"""Level-batch engine selection, fallback, and plan pass-through.

The equivalence guarantees live in ``test_property_level_batch.py``;
this file pins the *plumbing*: which configurations actually dispatch
to :class:`~repro.join.LevelBatchState`, which silently fall back to
the stack machine (the flag must never make a join illegal), how the
observability hooks surface the batch engine, and how the optimizer
carries the traversal choice from a priced plan into execution.
"""

import pytest

from repro.datasets import uniform_rectangles
from repro.estimator import have_numpy
from repro.exec import (TRAVERSALS, Budget, ExecutionConfig,
                        ExecutionGovernor)
from repro.join import (LevelBatchState, PartialJoinResult, SpatialJoin,
                        WithinDistance, parallel_spatial_join,
                        spatial_join, supports_level_batch, tree_arena)
from repro.join.predicates import Overlap
from repro.join.sync import _TraversalState
from repro.obs import MemorySink, MetricsRegistry, Tracer
from repro.optimizer import (Catalog, IndexScanPlan, execute_plan,
                             make_spatial_join)
from repro.rtree import share_tree
from repro.storage import AccessStats

from .conftest import build_rstar, make_items
from .test_property_vectorized import force_backend

needs_numpy = pytest.mark.skipif(not have_numpy(),
                                 reason="requires the NumPy backend")

BATCH = ExecutionConfig(traversal="level-batch")


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(300, seed=71), max_entries=8)
    t2 = build_rstar(make_items(260, seed=72), max_entries=8)
    return t1, t2


def _state(t1, t2, config=BATCH, predicate=Overlap(), **kw):
    join = SpatialJoin(t1, t2, predicate=predicate, config=config, **kw)
    return join._state(AccessStats(), collect_pairs=True)


class TestSelection:
    def test_traversals_vocabulary(self):
        assert TRAVERSALS == ("stack", "level-batch")
        with pytest.raises(ValueError, match="traversal"):
            ExecutionConfig(traversal="magic")

    @needs_numpy
    def test_level_batch_config_selects_batch_engine(self, trees):
        assert isinstance(_state(*trees), LevelBatchState)

    def test_default_config_selects_stack(self, trees):
        assert isinstance(_state(*trees, config=ExecutionConfig()),
                          _TraversalState)

    @needs_numpy
    def test_arena_view_selects_batch_engine(self, trees):
        t1, _t2 = trees
        h, lease = share_tree(t1)
        try:
            view = h.attach()
            assert tree_arena(view) is not None
            assert isinstance(_state(view, view), LevelBatchState)
        finally:
            lease.close()


class TestFallback:
    def test_pure_python_falls_back(self, trees):
        with force_backend("python"):
            assert not supports_level_batch(Overlap(), "nested-loop")
            assert isinstance(_state(*trees), _TraversalState)

    @needs_numpy
    @pytest.mark.parametrize("enum", ["plane-sweep", "vectorized-sweep"])
    def test_plane_sweeps_fall_back(self, trees, enum):
        assert not supports_level_batch(Overlap(), enum)
        cfg = BATCH.with_options(pair_enumeration=enum)
        assert isinstance(_state(*trees, config=cfg), _TraversalState)

    @needs_numpy
    def test_predicate_subclass_falls_back(self, trees):
        class Narrower(Overlap):          # could override leaf_test
            pass
        assert not supports_level_batch(Narrower(), "nested-loop")
        assert isinstance(_state(*trees, predicate=Narrower()),
                          _TraversalState)
        assert supports_level_batch(WithinDistance(0.1), "vectorized")

    @needs_numpy
    def test_resume_always_uses_stack_machine(self, trees):
        t1, t2 = trees
        gov = ExecutionGovernor(Budget(max_na=10), partial=True)
        first = SpatialJoin(t1, t2, governor=gov, config=BATCH).run()
        assert isinstance(first, PartialJoinResult)
        join = SpatialJoin(t1, t2, config=BATCH)
        # The dispatch honours allow_batch=False, which resume() passes.
        state = join._state(AccessStats(), True, allow_batch=False)
        assert isinstance(state, _TraversalState)
        final = join.resume(first.checkpoint)
        assert final.complete


@needs_numpy
class TestObservability:
    def test_metrics_and_trace_events(self, trees):
        t1, t2 = trees
        metrics = MetricsRegistry()
        sink = MemorySink()
        spatial_join(t1, t2, config=BATCH, metrics=metrics,
                     tracer=Tracer(sink))
        counters = metrics.as_dict()["counters"]
        assert counters["join.batch.levels"] > 0
        assert counters["join.batch.frontier_pairs"] > 0
        assert counters["join.batch.kernel_calls"] > 0
        levels = [r for r in sink.records
                  if r["event"] == "level_batch"]
        assert len(levels) == counters["join.batch.levels"]
        assert {"depth", "kind", "frontier", "items", "qualifying",
                "kernel_calls"} <= set(levels[0])

    def test_parallel_modes_merge_batch_counters(self, trees):
        t1, t2 = trees
        for mode in ("serial", "threads"):
            metrics = MetricsRegistry()
            cfg = BATCH.with_options(mode=mode, workers=2)
            parallel_spatial_join(t1, t2, config=cfg, metrics=metrics)
            counters = metrics.as_dict()["counters"]
            assert counters["join.batch.levels"] > 0, mode


class TestOptimizerPassThrough:
    @pytest.fixture(scope="class")
    def world(self):
        datasets = {"a": uniform_rectangles(300, 0.5, 2, seed=73),
                    "b": uniform_rectangles(280, 0.4, 2, seed=74)}
        trees = {n: build_rstar(ds.items, max_entries=16)
                 for n, ds in datasets.items()}
        catalog = Catalog(max_entries=16)
        for n, ds in datasets.items():
            catalog.register_dataset(n, ds)
        return trees, catalog

    def test_plan_carries_and_describes_traversal(self, world):
        _trees, catalog = world
        scans = (IndexScanPlan(catalog.get("a")),
                 IndexScanPlan(catalog.get("b")))
        stack = make_spatial_join(*scans)
        batch = make_spatial_join(*scans, traversal="level-batch")
        assert stack.traversal == "stack"
        assert batch.traversal == "level-batch"
        assert "traversal=level-batch" in batch.describe()
        assert "traversal=" not in stack.describe()
        # The knob never changes the priced I/O.
        assert batch.cost == stack.cost

    def test_make_spatial_join_rejects_bad_traversal(self, world):
        _trees, catalog = world
        with pytest.raises(ValueError, match="traversal"):
            make_spatial_join(IndexScanPlan(catalog.get("a")),
                              IndexScanPlan(catalog.get("b")),
                              traversal="magic")

    def test_executed_plan_counters_identical(self, world):
        trees, catalog = world
        scans = (IndexScanPlan(catalog.get("a")),
                 IndexScanPlan(catalog.get("b")))
        stack = execute_plan(make_spatial_join(*scans), trees)
        batch = execute_plan(
            make_spatial_join(*scans, traversal="level-batch"), trees)
        assert batch.key_set() == stack.key_set()
        assert batch.na_total == stack.na_total
        assert batch.da_total == stack.da_total

    def test_explicit_config_wins_over_plan(self, world):
        trees, catalog = world
        plan = make_spatial_join(IndexScanPlan(catalog.get("a")),
                                 IndexScanPlan(catalog.get("b")),
                                 traversal="level-batch")
        want = execute_plan(plan, trees)
        got = execute_plan(plan, trees, config=ExecutionConfig())
        assert got.na_total == want.na_total
        assert got.key_set() == want.key_set()
