"""§5 extension: operator window transformations."""

import pytest

from repro.costmodel import (OVERLAP_OP, contained_by, containment,
                             direction, within_distance)
from repro.geometry import Rect


class TestOverlapOp:
    def test_identity_transform(self):
        w = Rect((0.2, 0.2), (0.4, 0.4))
        assert OVERLAP_OP.transform_window(w) == w

    def test_cost_extents_unchanged(self):
        assert OVERLAP_OP.cost_extents((0.1, 0.2)) == (0.1, 0.2)

    def test_selectivity_factor_one(self):
        assert OVERLAP_OP.selectivity_factor == 1.0


class TestWithinDistance:
    def test_inflates_window(self):
        op = within_distance(0.1)
        w = op.transform_window(Rect((0.4, 0.4), (0.6, 0.6)))
        assert w.lo == pytest.approx((0.3, 0.3))
        assert w.hi == pytest.approx((0.7, 0.7))

    def test_cost_extents_grow_by_twice_distance(self):
        op = within_distance(0.05)
        assert op.cost_extents((0.1, 0.1)) == \
            pytest.approx((0.2, 0.2))

    def test_zero_distance_is_overlap(self):
        op = within_distance(0.0)
        w = Rect((0.1,), (0.2,))
        assert op.transform_window(w) == w
        assert op.cost_extents((0.3,)) == (0.3,)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            within_distance(-0.1)

    def test_selectivity_factor_one(self):
        # Distance joins change the window, not the qualification rule.
        assert within_distance(0.1).selectivity_factor == 1.0


class TestContainment:
    def test_factor_below_one(self):
        op = containment((0.3, 0.3), (0.05, 0.05))
        assert 0.0 < op.selectivity_factor < 1.0

    def test_object_bigger_than_window_cannot_be_contained(self):
        op = containment((0.1, 0.1), (0.2, 0.2))
        assert op.selectivity_factor == 0.0

    def test_point_objects_nearly_as_likely_as_overlap(self):
        op = containment((0.3, 0.3), (0.0, 0.0))
        assert op.selectivity_factor == pytest.approx(1.0)

    def test_hand_computed(self):
        # q = 0.4, s = 0.1: overlap p = 0.5^2, contain p = 0.3^2.
        op = containment((0.4, 0.4), (0.1, 0.1))
        assert op.selectivity_factor == pytest.approx(
            (0.3 ** 2) / (0.5 ** 2))

    def test_contained_by_mirrors(self):
        a = containment((0.4, 0.4), (0.1, 0.1)).selectivity_factor
        b = contained_by((0.1, 0.1), (0.4, 0.4)).selectivity_factor
        assert a == pytest.approx(b)


class TestDirection:
    def test_half_probability(self):
        assert direction(2, 0).selectivity_factor == 0.5

    def test_axis_validated(self):
        with pytest.raises(ValueError):
            direction(2, 2)
        with pytest.raises(ValueError):
            direction(2, -1)
