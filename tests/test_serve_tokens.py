"""Resume tokens: opaque, CRC-guarded, tamper-evident."""

import base64
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import Budget, ExecutionGovernor
from repro.join import PartialJoinResult, SpatialJoin
from repro.reliability import CorruptPageError, MalformedFileError
from repro.serve import decode_resume_token, encode_resume_token
from repro.storage import PathBuffer

from .conftest import build_rstar, make_items

FUZZ = settings(max_examples=50,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


@pytest.fixture(scope="module")
def checkpoint():
    t1 = build_rstar(make_items(200, seed=71), max_entries=8)
    t2 = build_rstar(make_items(180, seed=72), max_entries=8)
    gov = ExecutionGovernor(Budget(max_na=8), partial=True)
    result = SpatialJoin(t1, t2, PathBuffer(), governor=gov).run()
    assert isinstance(result, PartialJoinResult)
    return result.checkpoint


class TestRoundTrip:
    def test_encode_decode_identity(self, checkpoint):
        token = encode_resume_token(checkpoint)
        assert isinstance(token, str)
        assert decode_resume_token(token).to_dict() == \
            checkpoint.to_dict()

    def test_token_is_url_safe(self, checkpoint):
        token = encode_resume_token(checkpoint)
        assert not set(token) - set(
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
            "abcdefghijklmnopqrstuvwxyz0123456789-_=")

    def test_deterministic(self, checkpoint):
        assert encode_resume_token(checkpoint) == \
            encode_resume_token(checkpoint)


class TestTamperRejection:
    @FUZZ
    @given(offset=st.integers(min_value=0, max_value=100_000),
           flip=st.integers(min_value=1, max_value=255))
    def test_bitflip_in_payload_never_decodes(self, checkpoint,
                                              offset, flip):
        # Flip a byte of the *compressed payload* (pre-base64), the
        # representation an attacker or a torn copy would corrupt.
        token = encode_resume_token(checkpoint)
        raw = bytearray(base64.urlsafe_b64decode(token))
        raw[offset % len(raw)] ^= flip
        mutated = base64.urlsafe_b64encode(bytes(raw)).decode()
        with pytest.raises((CorruptPageError, MalformedFileError)):
            decode_resume_token(mutated)

    @FUZZ
    @given(cut=st.integers(min_value=0, max_value=100_000))
    def test_truncation_never_decodes(self, checkpoint, cut):
        token = encode_resume_token(checkpoint)
        cut = cut % len(token)           # strictly shorter
        with pytest.raises((CorruptPageError, MalformedFileError)):
            decode_resume_token(token[:cut])

    def test_crc_guards_decompressed_document(self, checkpoint):
        # A validly encoded but altered document must hit the CRC.
        import json
        doc = checkpoint.to_dict()
        from repro.exec.checkpoint import _doc_crc
        doc["crc"] = _doc_crc(doc)
        doc["pair_count"] = doc["pair_count"] + 7   # after checksumming
        raw = json.dumps(doc, sort_keys=True,
                         separators=(",", ":")).encode()
        forged = base64.urlsafe_b64encode(
            zlib.compress(raw)).decode("ascii")
        with pytest.raises(CorruptPageError):
            decode_resume_token(forged)

    @pytest.mark.parametrize("junk", [
        "", "not-a-token", "%%%", "AAAA",
        base64.urlsafe_b64encode(b"not zlib").decode(),
        base64.urlsafe_b64encode(zlib.compress(b"[1,2,3]")).decode(),
        base64.urlsafe_b64encode(zlib.compress(b"\xff\xfe")).decode(),
    ])
    def test_junk_raises_typed(self, junk):
        with pytest.raises((CorruptPageError, MalformedFileError)):
            decode_resume_token(junk)
