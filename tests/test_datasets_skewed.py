"""Skewed data generators."""

import pytest

from repro.datasets import (LocalDensityGrid, clustered_rectangles,
                            diagonal_rectangles, uniform_rectangles,
                            zipf_rectangles)
from repro.geometry import Rect

GENERATORS = [clustered_rectangles, zipf_rectangles, diagonal_rectangles]


@pytest.mark.parametrize("gen", GENERATORS,
                         ids=["clustered", "zipf", "diagonal"])
class TestCommonContract:
    def test_cardinality(self, gen):
        assert gen(300, 0.4, 2, seed=1).cardinality == 300

    def test_density_exact(self, gen):
        ds = gen(300, 0.4, 2, seed=2)
        assert ds.density() == pytest.approx(0.4, rel=1e-6)

    def test_inside_workspace(self, gen):
        ds = gen(200, 0.6, 2, seed=3)
        unit = Rect.unit(2)
        assert all(unit.contains(r) for r in ds.rects)

    def test_reproducible(self, gen):
        assert gen(50, 0.3, 2, seed=4).rects == gen(50, 0.3, 2,
                                                    seed=4).rects

    def test_one_dimensional(self, gen):
        ds = gen(100, 0.3, 1, seed=5)
        assert ds.ndim == 1
        assert ds.density() == pytest.approx(0.3, rel=1e-6)

    def test_empty(self, gen):
        assert gen(0, 0.5, 2).cardinality == 0

    def test_more_skewed_than_uniform(self, gen):
        skewed = gen(1000, 0.3, 2, seed=6)
        flat = uniform_rectangles(1000, 0.3, 2, seed=6)
        cv_skewed = LocalDensityGrid(skewed, 5).skew_coefficient()
        cv_flat = LocalDensityGrid(flat, 5).skew_coefficient()
        assert cv_skewed > cv_flat

    def test_invalid_args(self, gen):
        with pytest.raises(ValueError):
            gen(-1, 0.5, 2)
        with pytest.raises(ValueError):
            gen(10, -1.0, 2)
        with pytest.raises(ValueError):
            gen(10, 0.5, 0)


class TestGeneratorSpecifics:
    def test_clusters_parameter(self):
        with pytest.raises(ValueError):
            clustered_rectangles(10, 0.5, 2, clusters=0)
        with pytest.raises(ValueError):
            clustered_rectangles(10, 0.5, 2, spread=0.0)

    def test_fewer_clusters_more_skew(self):
        tight = clustered_rectangles(1000, 0.3, 2, clusters=2,
                                     spread=0.03, seed=7)
        loose = clustered_rectangles(1000, 0.3, 2, clusters=32,
                                     spread=0.1, seed=7)
        assert LocalDensityGrid(tight, 5).skew_coefficient() > \
            LocalDensityGrid(loose, 5).skew_coefficient()

    def test_zipf_alpha_validated(self):
        with pytest.raises(ValueError):
            zipf_rectangles(10, 0.5, 2, alpha=0.0)

    def test_zipf_mass_near_origin(self):
        ds = zipf_rectangles(1000, 0.1, 2, alpha=2.0, seed=8)
        # With alpha = 2, P(center < 0.25) = P(u^2 < 0.25) = 0.5 per
        # dimension, so ~250 of 1000 land in the origin quadrant; a
        # uniform distribution would put only ~62 there.
        near = sum(1 for r in ds.rects
                   if r.center[0] < 0.25 and r.center[1] < 0.25)
        assert near > 180

    def test_diagonal_width_validated(self):
        with pytest.raises(ValueError):
            diagonal_rectangles(10, 0.5, 2, width=-0.1)

    def test_diagonal_correlation(self):
        ds = diagonal_rectangles(500, 0.1, 2, width=0.02, seed=9)
        off_diagonal = sum(1 for r in ds.rects
                           if abs(r.center[0] - r.center[1]) > 0.2)
        assert off_diagonal < 25
