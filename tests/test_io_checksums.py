"""Checksummed tree persistence: v2 format, corruption, degraded loads."""

import json
import random

import pytest

from repro.datasets import SpatialDataset
from repro.geometry import Rect
from repro.io import (TREE_FORMAT_VERSION, load_dataset, load_tree,
                      save_dataset, save_tree, verify_tree_file)
from repro.join import spatial_join
from repro.reliability import (CorruptPageError, MalformedFileError,
                               ReproError)

from .conftest import build_rstar, make_items


def saved(tmp_path, n=250, seed=5, name="t.json"):
    tree = build_rstar(make_items(n, seed=seed), max_entries=8)
    path = tmp_path / name
    save_tree(tree, path)
    return tree, path


def non_root_leaf_id(doc):
    """Pick a deterministic non-root leaf page from a saved document."""
    leaves = sorted(int(p) for p, payload in doc["nodes"].items()
                    if payload["level"] == 1 and int(p) != doc["root_id"])
    assert leaves, "test tree must have height >= 2"
    return leaves[0]


def flip_byte_in_node(path, page_id):
    """Flip one coordinate digit inside one node's entry payload."""
    text = path.read_text()
    anchor = text.index(f'"{page_id}":')
    entries_at = text.index('"entries"', anchor)
    for i in range(entries_at, len(text)):
        ch = text[i]
        if ch.isdigit() and text[i - 1] == ".":   # fraction digit: safe
            flipped = "1" if ch != "1" else "2"
            path.write_text(text[:i] + flipped + text[i + 1:])
            return
    raise AssertionError("no digit found to flip")


class TestFormatV2:
    def test_documents_are_checksummed(self, tmp_path):
        _tree, path = saved(tmp_path)
        doc = json.loads(path.read_text())
        assert doc["format"] == TREE_FORMAT_VERSION == 2
        assert isinstance(doc["checksum"], int)
        assert all(isinstance(p["crc"], int)
                   for p in doc["nodes"].values())

    def test_round_trip_unchanged(self, tmp_path):
        tree, path = saved(tmp_path)
        loaded = load_tree(path)
        assert loaded.height == tree.height
        assert loaded.size == tree.size
        window = Rect((0.1, 0.1), (0.7, 0.6))
        assert sorted(loaded.range_query(window)) == \
            sorted(tree.range_query(window))

    def test_lenient_load_of_clean_file_reports_clean(self, tmp_path):
        _tree, path = saved(tmp_path)
        loaded = load_tree(path, strict=False)
        assert loaded.corruption_report.clean
        assert loaded.corruption_report.checksummed
        assert "clean" in loaded.corruption_report.summary()


class TestBitFlipDetection:
    def test_strict_load_raises_corrupt_page_error(self, tmp_path):
        _tree, path = saved(tmp_path)
        doc = json.loads(path.read_text())
        victim = non_root_leaf_id(doc)
        flip_byte_in_node(path, victim)
        with pytest.raises(CorruptPageError):
            load_tree(path)

    def test_lenient_load_quarantines_and_stays_queryable(self, tmp_path):
        tree, path = saved(tmp_path)
        doc = json.loads(path.read_text())
        victim = non_root_leaf_id(doc)
        victim_objects = len(doc["nodes"][str(victim)]["entries"])
        flip_byte_in_node(path, victim)

        degraded = load_tree(path, strict=False)
        report = degraded.corruption_report
        assert not report.clean
        assert victim in report.corrupt_pages
        assert report.dropped_entries == 1          # one parent entry
        assert report.lost_objects == victim_objects
        assert degraded.size == tree.size - victim_objects

        # Still queryable: answers are a subset of the intact tree's.
        window = Rect((0.0, 0.0), (1.0, 1.0))
        got = set(degraded.range_query(window))
        expected = set(tree.range_query(window))
        assert got <= expected
        assert len(got) == len(expected) - victim_objects

    def test_degraded_tree_still_joins(self, tmp_path):
        tree, path = saved(tmp_path)
        doc = json.loads(path.read_text())
        flip_byte_in_node(path, non_root_leaf_id(doc))
        degraded = load_tree(path, strict=False)
        other = build_rstar(make_items(100, seed=77), max_entries=8)
        baseline = spatial_join(tree, other)
        result = spatial_join(degraded, other)
        assert set(result.pairs) <= set(baseline.pairs)

    def test_header_tamper_fails_document_checksum(self, tmp_path):
        _tree, path = saved(tmp_path)
        doc = json.loads(path.read_text())
        doc["size"] += 1                 # checksum left stale on purpose
        path.write_text(json.dumps(doc))
        with pytest.raises(CorruptPageError, match="document checksum"):
            load_tree(path)
        report = load_tree(path, strict=False).corruption_report
        assert not report.document_checksum_ok
        assert not report.clean

    def test_corrupt_root_unrecoverable_even_leniently(self, tmp_path):
        _tree, path = saved(tmp_path)
        doc = json.loads(path.read_text())
        flip_byte_in_node(path, doc["root_id"])
        with pytest.raises(CorruptPageError, match="root"):
            load_tree(path, strict=False)

    def test_verify_tree_file(self, tmp_path):
        _tree, path = saved(tmp_path)
        assert verify_tree_file(path).clean
        doc = json.loads(path.read_text())
        flip_byte_in_node(path, non_root_leaf_id(doc))
        assert not verify_tree_file(path).clean


class TestV1Compatibility:
    def downgrade(self, path):
        """Rewrite a v2 file as the un-checksummed v1 format."""
        doc = json.loads(path.read_text())
        doc["format"] = 1
        del doc["checksum"]
        for payload in doc["nodes"].values():
            del payload["crc"]
        path.write_text(json.dumps(doc))

    def test_v1_still_loads(self, tmp_path):
        tree, path = saved(tmp_path)
        self.downgrade(path)
        loaded = load_tree(path)
        assert loaded.size == tree.size
        window = Rect((0.2, 0.2), (0.8, 0.8))
        assert sorted(loaded.range_query(window)) == \
            sorted(tree.range_query(window))

    def test_v1_lenient_reports_unchecksummed(self, tmp_path):
        _tree, path = saved(tmp_path)
        self.downgrade(path)
        report = load_tree(path, strict=False).corruption_report
        assert report.clean
        assert not report.checksummed
        assert "no checksums" in report.summary()


class TestMalformedDocuments:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text('{"format": 2, "ndim": 2, "nod')
        with pytest.raises(MalformedFileError, match="invalid JSON"):
            load_tree(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(MalformedFileError, match="JSON object"):
            load_tree(path)

    @pytest.mark.parametrize("missing", ["root_id", "ndim", "height",
                                         "size", "nodes", "max_entries"])
    def test_missing_field_named(self, tmp_path, missing):
        _tree, path = saved(tmp_path)
        doc = json.loads(path.read_text())
        del doc[missing]
        doc["checksum"] = 0  # irrelevant: shape is checked first
        path.write_text(json.dumps(doc))
        with pytest.raises(MalformedFileError) as excinfo:
            load_tree(path)
        assert missing in str(excinfo.value)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.field == missing

    def test_malformed_errors_are_repro_and_value_errors(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 999}')
        with pytest.raises(ReproError):
            load_tree(path)
        with pytest.raises(ValueError, match="unsupported tree format"):
            load_tree(path)


class TestDatasetGeometryValidation:
    def test_inverted_rectangle_is_malformed(self, tmp_path):
        path = tmp_path / "inv.txt"
        path.write_text("0 0.5 0.5 0.1 0.9\n")
        with pytest.raises(MalformedFileError, match="inv.txt:1"):
            load_dataset(path)

    def test_dimensionality_mismatch_reports_line(self, tmp_path):
        path = tmp_path / "mix.txt"
        path.write_text("0 0.1 0.1 0.2 0.2\n"       # 2-d
                        "1 0.1 0.2\n"                # 1-d
                        "2 0.3 0.3 0.4 0.4\n")
        with pytest.raises(MalformedFileError,
                           match="mix.txt:2") as excinfo:
            load_dataset(path)
        assert "1-dimensional" in str(excinfo.value)
        assert "2-dimensional" in str(excinfo.value)


class TestRandomizedRoundTrips:
    @pytest.mark.parametrize("seed", range(5))
    def test_dataset_round_trip(self, tmp_path, seed):
        rng = random.Random(seed)
        ndim = rng.choice((1, 2, 3))
        items = []
        for oid in range(rng.randint(1, 120)):
            lo = [rng.uniform(0, 0.9) for _ in range(ndim)]
            hi = [a + rng.uniform(0, 0.1) for a in lo]
            items.append((Rect(lo, hi), oid))
        ds = SpatialDataset(items, name=f"rand-{seed}")
        path = tmp_path / "ds.txt"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.items == ds.items
        assert loaded.name == ds.name

    @pytest.mark.parametrize("seed", range(5))
    def test_tree_round_trip_preserves_joins(self, tmp_path, seed):
        rng = random.Random(1000 + seed)
        n = rng.randint(50, 400)
        tree = build_rstar(make_items(n, seed=seed), max_entries=8)
        other = build_rstar(make_items(150, seed=seed + 50),
                            max_entries=8)
        path = tmp_path / "t.json"
        save_tree(tree, path)
        loaded = load_tree(path)
        original = spatial_join(tree, other)
        reloaded = spatial_join(loaded, other)
        assert sorted(original.pairs) == sorted(reloaded.pairs)
        assert (original.na_total, original.da_total) == \
            (reloaded.na_total, reloaded.da_total)
