"""Unit tests for R-tree nodes and entries."""

import pytest

from repro.geometry import Rect
from repro.rtree import LEAF_LEVEL, Entry, Node


class TestEntry:
    def test_fields(self):
        r = Rect((0,), (1,))
        e = Entry(r, 42)
        assert e.rect == r and e.ref == 42

    def test_frozen(self):
        e = Entry(Rect((0,), (1,)), 1)
        with pytest.raises(AttributeError):
            e.ref = 2

    def test_equality(self):
        a = Entry(Rect((0,), (1,)), 1)
        b = Entry(Rect((0,), (1,)), 1)
        assert a == b


class TestNode:
    def test_leaf_detection(self):
        assert Node(0, LEAF_LEVEL).is_leaf
        assert not Node(0, 2).is_leaf

    def test_rejects_level_below_leaf(self):
        with pytest.raises(ValueError):
            Node(0, 0)

    def test_mbr(self):
        node = Node(0, 1, [
            Entry(Rect((0.0, 0.0), (0.2, 0.2)), 1),
            Entry(Rect((0.5, 0.4), (0.9, 0.6)), 2),
        ])
        assert node.mbr() == Rect((0.0, 0.0), (0.9, 0.6))

    def test_mbr_of_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Node(0, 1).mbr()

    def test_entry_for_child(self):
        node = Node(0, 2, [
            Entry(Rect((0,), (1,)), 10),
            Entry(Rect((0,), (1,)), 11),
        ])
        assert node.entry_for_child(11) == 1

    def test_entry_for_missing_child_raises(self):
        with pytest.raises(KeyError):
            Node(0, 2).entry_for_child(99)

    def test_replace_entry(self):
        node = Node(0, 1, [Entry(Rect((0,), (1,)), 1)])
        node.replace_entry(0, Entry(Rect((0,), (0.5,)), 1))
        assert node.entries[0].rect == Rect((0,), (0.5,))

    def test_len(self):
        node = Node(0, 1, [Entry(Rect((0,), (1,)), i) for i in range(3)])
        assert len(node) == 3

    def test_entries_list_copied_at_construction(self):
        entries = [Entry(Rect((0,), (1,)), 1)]
        node = Node(0, 1, entries)
        entries.append(Entry(Rect((0,), (1,)), 2))
        assert len(node) == 1

    def test_repr(self):
        assert "leaf" in repr(Node(3, 1))
        assert "internal" in repr(Node(3, 2))
