"""Checkpoint file format, validation, and resume safeguards."""

import json
import threading

import pytest

from repro.exec import (Budget, CheckpointMismatch, ExecutionGovernor,
                        JoinCheckpoint, tree_fingerprint)
from repro.join import OVERLAP, SpatialJoin, WithinDistance
from repro.reliability import CorruptPageError, MalformedFileError
from repro.storage import AccessStats, LRUBuffer, NoBuffer, PathBuffer

from .conftest import build_rstar, make_items


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(300, seed=21))
    t2 = build_rstar(make_items(300, seed=22))
    return t1, t2


@pytest.fixture(scope="module")
def partial(trees):
    t1, t2 = trees
    gov = ExecutionGovernor(Budget(max_na=20), partial=True)
    result = SpatialJoin(t1, t2, PathBuffer(), governor=gov).run()
    assert not result.complete
    return result


class TestFileFormat:
    def test_save_load_round_trip(self, partial, tmp_path):
        path = tmp_path / "join.ckpt"
        partial.checkpoint.save(path)
        loaded = JoinCheckpoint.load(path)
        assert loaded.to_dict() == partial.checkpoint.to_dict()

    def test_concurrent_saves_to_same_path_are_safe(self, partial,
                                                    tmp_path):
        # Regression: a fixed sibling temp name (path + '.tmp') let
        # concurrent saves clobber each other's in-flight temp file,
        # and the loser's cleanup could unlink the winner's temp
        # before its rename, failing the save.
        path = tmp_path / "join.ckpt"
        errors = []
        start = threading.Barrier(8)

        def hammer():
            try:
                start.wait(10)
                for _ in range(25):
                    partial.checkpoint.save(path)
            except Exception as exc:    # noqa: BLE001 — collected
                errors.append(exc)

        workers = [threading.Thread(target=hammer) for _ in range(8)]
        for w in workers:
            w.start()
        for w in workers:
            w.join(30)
        assert errors == []
        loaded = JoinCheckpoint.load(path)
        assert loaded.to_dict() == partial.checkpoint.to_dict()
        assert list(tmp_path.glob("*.tmp")) == []    # no temp litter

    def test_save_fsyncs_file_and_directory(self, partial, tmp_path,
                                            monkeypatch):
        # Crash-safety contract: a durable save syncs the file content
        # AND the directory entry, so neither the bytes nor the rename
        # can be lost to a power cut after save() returns.
        import os as _os
        synced = []
        real_fsync = _os.fsync
        monkeypatch.setattr(
            "os.fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1])
        partial.checkpoint.save(tmp_path / "durable.ckpt")
        assert len(synced) >= 2            # content + parent directory

    def test_save_durable_false_skips_fsync(self, partial, tmp_path,
                                            monkeypatch):
        # The hot-loop opt-out (interval-fsynced journals) must not pay
        # per-spill fsyncs; atomic replace still applies.
        synced = []
        monkeypatch.setattr("os.fsync", lambda fd: synced.append(fd))
        path = tmp_path / "fast.ckpt"
        partial.checkpoint.save(path, durable=False)
        assert synced == []
        loaded = JoinCheckpoint.load(path)
        assert loaded.to_dict() == partial.checkpoint.to_dict()

    def test_tampered_payload_fails_crc(self, partial, tmp_path):
        path = tmp_path / "join.ckpt"
        partial.checkpoint.save(path)
        doc = json.loads(path.read_text())
        doc["pair_count"] += 1           # flip a counter, keep the CRC
        path.write_text(json.dumps(doc))
        with pytest.raises(CorruptPageError):
            JoinCheckpoint.load(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_text("{not json")
        with pytest.raises(MalformedFileError):
            JoinCheckpoint.load(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "list.ckpt"
        path.write_text("[1, 2, 3]")
        with pytest.raises(MalformedFileError):
            JoinCheckpoint.load(path)

    def test_unsupported_format_version(self, partial, tmp_path):
        path = tmp_path / "future.ckpt"
        partial.checkpoint.save(path)
        doc = json.loads(path.read_text())
        doc["format"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(MalformedFileError) as err:
            JoinCheckpoint.load(path)
        assert "format" in str(err.value)

    def test_missing_required_field(self, partial, tmp_path):
        path = tmp_path / "partial.ckpt"
        partial.checkpoint.save(path)
        doc = json.loads(path.read_text())
        del doc["stack"]
        path.write_text(json.dumps(doc))
        with pytest.raises(MalformedFileError) as err:
            JoinCheckpoint.load(path)
        assert "stack" in str(err.value)

    def test_reason_is_machine_readable(self, partial):
        reason = partial.checkpoint.reason
        assert reason["error"] == "budget-exceeded"
        assert reason["resource"] == "na"
        assert reason["limit"] == 20


class TestResumeValidation:
    def test_wrong_tree_rejected(self, partial, trees):
        _t1, t2 = trees
        other = build_rstar(make_items(120, seed=29))
        with pytest.raises(CheckpointMismatch):
            SpatialJoin(other, t2, PathBuffer()).resume(partial.checkpoint)

    def test_wrong_predicate_rejected(self, partial, trees):
        t1, t2 = trees
        sj = SpatialJoin(t1, t2, PathBuffer(),
                         predicate=WithinDistance(0.1))
        with pytest.raises(CheckpointMismatch):
            sj.resume(partial.checkpoint)

    def test_wrong_enumeration_rejected(self, partial, trees):
        t1, t2 = trees
        sj = SpatialJoin(t1, t2, PathBuffer(),
                         pair_enumeration="plane-sweep")
        with pytest.raises(CheckpointMismatch):
            sj.resume(partial.checkpoint)

    def test_wrong_buffer_kind_rejected(self, partial, trees):
        t1, t2 = trees
        with pytest.raises(CheckpointMismatch):
            SpatialJoin(t1, t2, LRUBuffer(8)).resume(partial.checkpoint)

    def test_stale_cursor_rejected(self, partial, trees):
        # A cursor pointing past the end of a node pair's entry list can
        # only mean the checkpoint refers to different data.
        t1, t2 = trees
        doc = partial.checkpoint.to_dict()
        doc["stack"] = [row[:4] + [10**6] for row in doc["stack"]]
        bad = JoinCheckpoint.from_dict(doc)
        with pytest.raises(CheckpointMismatch):
            SpatialJoin(t1, t2, PathBuffer()).resume(bad)

    def test_mismatch_is_value_error(self):
        # CLI maps ValueError to the usage/data exit code.
        assert issubclass(CheckpointMismatch, ValueError)

    def test_fingerprint_fields(self, trees):
        t1, _ = trees
        fp = tree_fingerprint(t1)
        assert fp == {"root_id": t1.root_id, "height": t1.height,
                      "size": len(t1), "ndim": t1.ndim,
                      "max_entries": t1.max_entries}


class TestStateRoundTrips:
    def test_access_stats_from_dict(self):
        stats = AccessStats()
        stats.record("R1", 2, buffer_hit=False)
        stats.record("R1", 1, buffer_hit=True)
        stats.record("R2", 1, buffer_hit=False)
        rebuilt = AccessStats.from_dict(stats.as_dict())
        assert rebuilt.as_dict() == stats.as_dict()
        assert rebuilt.na() == 3 and rebuilt.da() == 2

    def test_path_buffer_snapshot_restore(self):
        buf = PathBuffer()
        buf.access("R1", 3, 7)
        buf.access("R1", 2, 9)
        buf.access("R2", 3, 4)
        state = buf.snapshot()
        fresh = PathBuffer()
        fresh.restore(state)
        assert fresh.snapshot() == state
        # Restored content produces the same hit/miss decisions.
        assert fresh.access("R1", 3, 7) is True       # hit
        assert fresh.access("R1", 3, 8) is False      # miss

    def test_lru_buffer_snapshot_restore(self):
        buf = LRUBuffer(3)
        for node in (1, 2, 3, 4):                     # evicts 1
            buf.access("R1", 1, node)
        state = buf.snapshot()
        fresh = LRUBuffer(3)
        fresh.restore(state)
        assert fresh.snapshot() == state
        assert fresh.access("R1", 1, 1) is False      # was evicted
        assert fresh.access("R1", 1, 4) is True

    def test_no_buffer_snapshot_restore(self):
        buf = NoBuffer()
        buf.access("R1", 1, 1)
        fresh = NoBuffer()
        fresh.restore(buf.snapshot())
        assert fresh.access("R1", 1, 1) is False      # never a hit

    def test_checkpoint_records_buffer_and_predicate(self, partial):
        ckpt = partial.checkpoint
        assert ckpt.buffer_kind == "path"
        assert ckpt.predicate == {"kind": "overlap"}
        assert ckpt.pair_enumeration == "nested-loop"
        assert OVERLAP is not None
