"""Structural quality metrics."""

import pytest

from repro.geometry import Rect
from repro.rtree import (GuttmanRTree, RStarTree, quality_report,
                         str_pack, total_overlap)

from .conftest import build_guttman, build_rstar, make_items


class TestQualityReport:
    def test_levels_covered(self):
        tree = build_rstar(make_items(300, seed=1))
        report = quality_report(tree)
        assert set(report) == set(range(1, tree.height + 1))

    def test_node_counts_match_tree(self):
        tree = build_rstar(make_items(300, seed=2))
        report = quality_report(tree)
        for level, q in report.items():
            assert q.nodes == len(tree.nodes_at_level(level))

    def test_coverage_matches_level_stats(self):
        tree = build_rstar(make_items(300, seed=3))
        report = quality_report(tree)
        stats = tree.level_stats()
        for level in report:
            assert report[level].coverage == pytest.approx(
                stats[level].density)

    def test_overlap_non_negative(self):
        tree = build_rstar(make_items(400, seed=4))
        for q in quality_report(tree).values():
            assert q.overlap >= 0.0
            assert q.overlap_ratio >= 0.0

    def test_disjoint_leaves_have_zero_overlap(self):
        # Four tiny rects in far corners, one leaf each at M = 2... use
        # a packed tree over a perfect grid instead: STR leaves tile.
        items = [(Rect((x / 10 + 0.001, y / 10 + 0.001),
                       (x / 10 + 0.002, y / 10 + 0.002)), x * 10 + y)
                 for x in range(10) for y in range(10)]
        tree = str_pack(items, 2, 4, fill=1.0)
        leaf_q = quality_report(tree)[1]
        assert leaf_q.overlap == pytest.approx(0.0, abs=1e-12)

    def test_mean_fill_in_range(self):
        tree = build_rstar(make_items(500, seed=5))
        q = quality_report(tree)[1]
        assert 0.3 <= q.mean_fill <= 1.0

    def test_empty_tree(self):
        tree = RStarTree(2, 8)
        assert quality_report(tree) == {}


class TestQualityComparisons:
    def test_rstar_overlap_not_worse_than_guttman_linear(self):
        items = make_items(600, seed=6)
        rstar = build_rstar(items, max_entries=8)
        linear = build_guttman(items, max_entries=8, split="linear")
        assert total_overlap(rstar) <= total_overlap(linear) * 1.1

    def test_total_overlap_missing_level_is_zero(self):
        tree = build_rstar(make_items(20, seed=7))
        assert total_overlap(tree, level=99) == 0.0

    def test_overlap_ratio_of_empty_coverage(self):
        from repro.rtree.analysis import LevelQuality
        q = LevelQuality(1, 0, 0.0, 0.0, 0.0, 0.0)
        assert q.overlap_ratio == 0.0
