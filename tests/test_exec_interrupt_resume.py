"""The resume invariant: interrupted + resumed == uninterrupted, bit for bit.

The acceptance property of the execution governor.  For any cut point —
any NA budget at which a partial-mode join stops — resuming from the
checkpoint must reproduce the uninterrupted run exactly: the same sorted
pair set, the same per-(tree, level) NA and DA counters, the same
comparison count.  Checked over 20+ random cut points, under injected
transient faults, across enumeration/predicate/buffer variants, and
through chains of repeated interruptions.
"""

import random

import pytest

from repro.exec import Budget, ExecutionGovernor
from repro.join import OVERLAP, PartialJoinResult, SpatialJoin, WithinDistance
from repro.reliability import FaultInjector, FaultyPager, RetryPolicy
from repro.storage import LRUBuffer, PathBuffer

from .conftest import build_rstar, make_items

RETRY_POLICY = RetryPolicy(max_attempts=12)


def _signature(result):
    """Everything that must be bit-identical after a resume."""
    return {
        "pairs": sorted(result.pairs) if result.pairs is not None else None,
        "pair_count": result.pair_count,
        "comparisons": result.comparisons,
        "na": dict(result.stats.node_accesses),
        "da": dict(result.stats.disk_accesses),
    }


def _join(t1, t2, *, buffer_factory=PathBuffer, governor=None, **kw):
    return SpatialJoin(t1, t2, buffer_factory(), governor=governor, **kw)


def _run_with_cut(t1, t2, cut, *, collect_pairs=True,
                  buffer_factory=PathBuffer, **kw):
    """Run to an NA budget of ``cut``, then resume to completion."""
    gov = ExecutionGovernor(Budget(max_na=cut), partial=True)
    first = _join(t1, t2, buffer_factory=buffer_factory,
                  governor=gov, **kw).run(collect_pairs=collect_pairs)
    if first.complete:
        return first, False              # cut landed past the total work
    assert isinstance(first, PartialJoinResult)
    # One drain step fetches at most one node *pair*, so the cut can
    # overshoot the NA budget by at most one read.
    assert cut <= first.na_total <= cut + 1
    final = _join(t1, t2, buffer_factory=buffer_factory,
                  **kw).resume(first.checkpoint)
    assert final.complete
    return final, True


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(400, seed=31), max_entries=8)
    t2 = build_rstar(make_items(350, seed=32), max_entries=8)
    return t1, t2


class TestResumeInvariant:
    def test_twenty_plus_random_cut_points(self, trees):
        t1, t2 = trees
        baseline = _signature(_join(t1, t2).run())
        total_na = sum(baseline["na"].values())
        assert total_na > 25
        rng = random.Random(20260806)
        cuts = {rng.randrange(1, total_na) for _ in range(40)}
        cuts |= {1, 2, total_na - 1}     # edges: first read, last read
        assert len(cuts) >= 20
        interrupted = 0
        for cut in sorted(cuts):
            final, was_cut = _run_with_cut(t1, t2, cut)
            interrupted += was_cut
            assert _signature(final) == baseline, f"cut at NA={cut}"
        assert interrupted >= 20

    def test_under_injected_faults(self, trees):
        # >= 5% transient fault rate on every page read, on both legs
        # (before and after the cut).  Retries are absorbed by the
        # retry policy and must not disturb the NA/DA accounting.
        t1, t2 = trees
        baseline = _signature(_join(t1, t2).run())
        total_na = sum(baseline["na"].values())
        injector = FaultInjector(seed=77, transient_rate=0.08)
        t1.pager = FaultyPager(t1.pager, injector)
        t2.pager = FaultyPager(t2.pager, injector)
        try:
            rng = random.Random(42)
            for cut in sorted(rng.randrange(1, total_na)
                              for _ in range(8)):
                final, _ = _run_with_cut(t1, t2, cut,
                                         retry_policy=RETRY_POLICY)
                assert _signature(final) == baseline, f"cut at NA={cut}"
            assert injector.counts.transients > 0
        finally:
            t1.pager = t1.pager.inner
            t2.pager = t2.pager.inner

    def test_multi_cut_chain(self, trees):
        # Interrupt, resume, interrupt the resumed run, resume again...
        # until done.  Each leg gets a fresh small NA allowance.
        t1, t2 = trees
        baseline = _signature(_join(t1, t2).run())
        step = 7
        gov = ExecutionGovernor(Budget(max_na=step), partial=True)
        result = _join(t1, t2, governor=gov).run()
        legs = 1
        while not result.complete:
            assert legs * step <= result.na_total <= legs * step + 1
            gov = ExecutionGovernor(Budget(max_na=(legs + 1) * step),
                                    partial=True)
            result = _join(t1, t2, governor=gov).resume(result.checkpoint)
            legs += 1
            assert legs < 1000
        assert legs > 3                  # genuinely chained
        assert _signature(result) == baseline

    def test_da_budget_cuts(self, trees):
        # The invariant holds when the cut lands on a disk-access
        # budget rather than a node-access budget.
        t1, t2 = trees
        baseline = _signature(_join(t1, t2).run())
        total_da = sum(baseline["da"].values())
        for cut in (1, total_da // 3, 2 * total_da // 3):
            if cut < 1:
                continue
            gov = ExecutionGovernor(Budget(max_da=cut), partial=True)
            first = _join(t1, t2, governor=gov).run()
            assert not first.complete
            final = _join(t1, t2).resume(first.checkpoint)
            assert _signature(final) == baseline, f"cut at DA={cut}"


class TestResumeVariants:
    def _invariant_at_cuts(self, t1, t2, cuts, **kw):
        baseline = _signature(_join(t1, t2, **kw).run())
        for cut in cuts:
            final, was_cut = _run_with_cut(t1, t2, cut, **kw)
            assert was_cut
            assert _signature(final) == baseline, f"cut at NA={cut}"

    def test_plane_sweep_enumeration(self, trees):
        t1, t2 = trees
        self._invariant_at_cuts(t1, t2, (5, 17, 41),
                                pair_enumeration="plane-sweep")

    def test_within_distance_predicate(self, trees):
        t1, t2 = trees
        self._invariant_at_cuts(t1, t2, (5, 17, 41),
                                predicate=WithinDistance(0.03))

    def test_lru_buffer(self, trees):
        t1, t2 = trees
        self._invariant_at_cuts(
            t1, t2, (5, 17, 41),
            buffer_factory=lambda: LRUBuffer(16))

    def test_collect_pairs_false(self, trees):
        t1, t2 = trees
        baseline = _signature(_join(t1, t2).run(collect_pairs=False))
        assert baseline["pairs"] == []   # nothing collected
        assert baseline["pair_count"] > 0
        for cut in (5, 17, 41):
            final, was_cut = _run_with_cut(t1, t2, cut,
                                           collect_pairs=False)
            assert was_cut
            assert _signature(final) == baseline

    def test_mixed_height_trees(self):
        # The shorter tree's leaf re-fetch regime must also survive the
        # cut: charged re-reads happen on resume exactly as they would
        # have in one run.
        big = build_rstar(make_items(900, seed=35), max_entries=8)
        small = build_rstar(make_items(40, seed=36), max_entries=8)
        assert big.height > small.height
        baseline = _signature(_join(big, small).run())
        total_na = sum(baseline["na"].values())
        rng = random.Random(7)
        for cut in sorted(rng.randrange(1, total_na) for _ in range(6)):
            final, _ = _run_with_cut(big, small, cut)
            assert _signature(final) == baseline, f"cut at NA={cut}"

    def test_overlap_is_default_predicate(self, trees):
        t1, t2 = trees
        a = _join(t1, t2).run()
        b = _join(t1, t2, predicate=OVERLAP).run()
        assert sorted(a.pairs) == sorted(b.pairs)
