"""The experiment harness and reporting."""

import pytest

from repro.datasets import uniform_rectangles
from repro.experiments import (BENCH_SCALE, PAPER_SCALE, SMOKE_SCALE,
                               TreeCache, error_summary, figure5_rows,
                               format_table, observe_join, print_figure,
                               relative_error)
from repro.rtree import RStarTree


class TestConfigs:
    def test_paper_scale_matches_paper(self):
        assert PAPER_SCALE.max_entries(1) == 84
        assert PAPER_SCALE.max_entries(2) == 50
        assert PAPER_SCALE.cardinalities == (20000, 40000, 60000, 80000)
        assert PAPER_SCALE.fill == 0.67

    def test_bench_scale_capacities(self):
        assert BENCH_SCALE.max_entries(1) == 41
        assert BENCH_SCALE.max_entries(2) == 24

    def test_densities_grid(self):
        assert BENCH_SCALE.densities == (0.2, 0.4, 0.6, 0.8)


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(-0.1)

    def test_zero_measured(self):
        # A non-zero model against a zero measurement has no defined
        # relative error: None, never float("inf"), which would leak
        # the non-JSON literal `Infinity` into serialized reports.
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) is None

    def test_observations_json_stays_strict_json(self):
        import json

        from repro.experiments import (JoinObservation,
                                       observation_records,
                                       observations_json)

        # A grid point with zero measured DA and a non-zero DA model:
        # exactly the shape that used to serialize as `Infinity`.
        ob = JoinObservation(
            label="edge", n1=10, n2=10, height1=1, height2=1,
            model_height1=1, model_height2=1,
            na_measured=4, na_model=5.0,
            da_measured=0, da_model=2.0,
            da1_measured=0, da1_model=1.0,
            da2_measured=0, da2_model=1.0, pairs=3)
        text = observations_json([ob])
        assert "Infinity" not in text
        [record] = json.loads(text)
        assert record["da_error"] is None
        assert record["na_error"] == pytest.approx(0.25)
        assert observation_records([ob])[0]["da1_error"] is None

    def test_none_errors_render_and_aggregate(self):
        from repro.experiments import format_error

        assert format_error(None) == "n/a"
        assert format_error(0.25) == "+25.0%"


class TestTreeCache:
    def test_builds_once_per_dataset(self):
        ds = uniform_rectangles(300, 0.5, 2, seed=1)
        cache = TreeCache()
        t1 = cache.get(ds, 16)
        t2 = cache.get(ds, 16)
        assert t1 is t2
        assert len(cache) == 1

    def test_distinguishes_parameters(self):
        ds = uniform_rectangles(300, 0.5, 2, seed=2)
        cache = TreeCache()
        assert cache.get(ds, 16) is not cache.get(ds, 8)
        assert cache.get(ds, 16) is not cache.get(ds, 16, "str")
        assert len(cache) == 3

    def test_variants(self):
        ds = uniform_rectangles(120, 0.5, 2, seed=3)
        cache = TreeCache()
        for variant in ("rstar", "guttman-linear", "guttman-quadratic",
                        "str", "hilbert"):
            tree = cache.get(ds, 8, variant)
            assert isinstance(tree, RStarTree) or len(tree) == 120

    def test_unknown_variant(self):
        ds = uniform_rectangles(10, 0.1, 2, seed=4)
        with pytest.raises(ValueError):
            TreeCache().get(ds, 8, "btree")


class TestObserveJoin:
    def test_fields_consistent(self):
        d1 = uniform_rectangles(600, 0.5, 2, seed=5)
        d2 = uniform_rectangles(900, 0.5, 2, seed=6)
        ob = observe_join(d1, d2, 16)
        assert ob.n1 == 600 and ob.n2 == 900
        assert ob.da_measured <= ob.na_measured
        assert ob.da1_measured + ob.da2_measured == ob.da_measured
        assert ob.na_model > 0 and ob.da_model > 0
        assert ob.pairs > 0

    def test_errors_derived(self):
        d1 = uniform_rectangles(500, 0.5, 2, seed=7)
        ob = observe_join(d1, d1, 16)
        assert ob.na_error == pytest.approx(
            (ob.na_model - ob.na_measured) / ob.na_measured)

    def test_nonuniform_variant(self):
        d1 = uniform_rectangles(500, 0.5, 2, seed=8)
        ob = observe_join(d1, d1, 16, nonuniform_resolution=3)
        assert ob.na_model > 0
        assert ob.da1_model + ob.da2_model == pytest.approx(ob.da_model)

    def test_label_default(self):
        d1 = uniform_rectangles(200, 0.4, 2, seed=9)
        ob = observe_join(d1, d1, 16)
        assert d1.name in ob.label


class TestReporting:
    def _obs(self):
        cache = TreeCache()
        out = []
        for seed in (10, 11):
            d1 = uniform_rectangles(400, 0.5, 2, seed=seed)
            d2 = uniform_rectangles(500, 0.5, 2, seed=seed + 5)
            out.append(observe_join(d1, d2, 16, cache=cache))
        return out

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # equal widths
        assert "a" in lines[0] and "---" in lines[1]

    def test_figure5_rows(self):
        rows = figure5_rows(self._obs())
        assert len(rows) == 2
        assert rows[0][0] == "0K/0K"
        assert all(len(r) == 7 for r in rows)

    def test_print_figure_returns_text(self, capsys):
        text = print_figure("test", self._obs())
        captured = capsys.readouterr()
        assert "exper(NA)" in text
        assert text in captured.out + text  # was printed

    def test_error_summary(self):
        summary = error_summary(self._obs())
        for key in ("na_mean", "na_max", "da_mean", "da_max",
                    "da1_mean", "da2_mean"):
            assert key in summary
            assert summary[key] >= 0

    def test_error_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            error_summary([])

    def test_error_summary_counts_defined_observations(self):
        summary = error_summary(self._obs())
        assert summary["count"] == 2
        for axis in ("na", "da", "da1", "da2"):
            assert 0 <= summary[f"{axis}_defined"] <= summary["count"]

    def test_error_summary_all_none_column(self):
        # An axis where every error is undefined (zero measured against
        # a non-zero model) must aggregate to zero WITHOUT looking like
        # a perfectly calibrated axis: defined=0 is the tell.
        from repro.experiments import JoinObservation
        obs = [JoinObservation(
            label=f"p{i}", n1=10, n2=10, height1=1, height2=1,
            model_height1=1, model_height2=1,
            na_measured=4, na_model=5.0,
            da_measured=0, da_model=2.0,     # da_error is None
            da1_measured=0, da1_model=1.0,   # da1_error is None
            da2_measured=0, da2_model=1.0,   # da2_error is None
            pairs=1) for i in range(3)]
        summary = error_summary(obs)
        assert summary["count"] == 3
        assert summary["na_defined"] == 3
        for axis in ("da", "da1", "da2"):
            assert summary[f"{axis}_defined"] == 0
            assert summary[f"{axis}_mean"] == 0.0
            assert summary[f"{axis}_max"] == 0.0

    def test_mixed_none_does_not_bias_mean(self):
        # One defined error of 0.5 plus two undefined ones: the mean is
        # 0.5 (denominator 1), not 0.5/3.
        from repro.experiments import JoinObservation

        def ob(label, da_measured, da_model):
            return JoinObservation(
                label=label, n1=10, n2=10, height1=1, height2=1,
                model_height1=1, model_height2=1,
                na_measured=4, na_model=4.0,
                da_measured=da_measured, da_model=da_model,
                da1_measured=1, da1_model=1.0,
                da2_measured=1, da2_model=1.0, pairs=1)

        obs = [ob("defined", 2, 3.0),        # error +0.5
               ob("undef-1", 0, 2.0),        # None
               ob("undef-2", 0, 1.0)]        # None
        summary = error_summary(obs)
        assert summary["da_defined"] == 1
        assert summary["da_mean"] == pytest.approx(0.5)
        assert summary["da_max"] == pytest.approx(0.5)
