"""Unit tests for access statistics."""

import json

import pytest

from repro.storage import AccessStats


class TestRecording:
    def test_miss_counts_both(self):
        stats = AccessStats()
        stats.record("T", 1, buffer_hit=False)
        assert stats.na() == 1
        assert stats.da() == 1

    def test_hit_counts_na_only(self):
        stats = AccessStats()
        stats.record("T", 1, buffer_hit=True)
        assert stats.na() == 1
        assert stats.da() == 0

    def test_da_never_exceeds_na(self):
        stats = AccessStats()
        for i in range(50):
            stats.record("T", 1 + i % 3, buffer_hit=(i % 2 == 0))
        assert stats.da() <= stats.na()


class TestFiltering:
    def _sample(self):
        stats = AccessStats()
        stats.record("R1", 1, False)
        stats.record("R1", 2, False)
        stats.record("R2", 1, True)
        stats.record("R2", 1, False)
        return stats

    def test_filter_by_tree(self):
        stats = self._sample()
        assert stats.na("R1") == 2
        assert stats.na("R2") == 2
        assert stats.da("R2") == 1

    def test_filter_by_level(self):
        stats = self._sample()
        assert stats.na(level=1) == 3
        assert stats.na(level=2) == 1

    def test_filter_by_both(self):
        stats = self._sample()
        assert stats.na("R1", level=2) == 1
        assert stats.da("R2", level=1) == 1

    def test_unknown_tree_is_zero(self):
        assert self._sample().na("nope") == 0

    def test_levels_listing(self):
        stats = self._sample()
        assert stats.levels("R1") == [1, 2]
        assert stats.levels("R2") == [1]


class TestLifecycle:
    def test_merge(self):
        a = AccessStats()
        a.record("T", 1, False)
        b = AccessStats()
        b.record("T", 1, True)
        b.record("T", 2, False)
        a.merge(b)
        assert a.na() == 3
        assert a.da() == 2

    def test_reset(self):
        stats = AccessStats()
        stats.record("T", 1, False)
        stats.reset()
        assert stats.na() == 0
        assert stats.da() == 0

    def test_as_dict_is_json_friendly(self):
        stats = AccessStats()
        stats.record("R1", 2, False)
        d = stats.as_dict()
        assert d["node_accesses"] == {"R1@2": 1}
        assert d["disk_accesses"] == {"R1@2": 1}

    def test_repr_shows_totals(self):
        stats = AccessStats()
        stats.record("T", 1, True)
        assert "NA=1" in repr(stats) and "DA=0" in repr(stats)


class TestSerialization:
    def _sample(self):
        stats = AccessStats()
        stats.record("R1", 2, False)
        stats.record("R1", 1, True)
        stats.record("R2", 1, False)
        stats.record_retry("R1", 1, backoff=0.004)
        stats.record_retry("R2", 1, backoff=0.002)
        return stats

    def test_round_trip_through_json(self):
        # as_dict -> JSON -> from_dict must preserve every counter and
        # the float backoff scalar (the parallel join's process
        # transport and checkpoint restore both rely on this).
        stats = self._sample()
        doc = json.loads(json.dumps(stats.as_dict(), allow_nan=False))
        back = AccessStats.from_dict(doc)
        assert back.as_dict() == stats.as_dict()
        assert back.na() == stats.na()
        assert back.da() == stats.da()
        assert back.retry_count() == stats.retry_count()
        assert back.accounted_backoff == stats.accounted_backoff

    def test_backoff_is_float_not_counter_map(self):
        doc = self._sample().as_dict()
        assert isinstance(doc["accounted_backoff"], float)
        for section in ("node_accesses", "disk_accesses", "retries"):
            assert all(isinstance(v, int)
                       for v in doc[section].values())

    def test_from_dict_rejects_unknown_sections(self):
        doc = self._sample().as_dict()
        doc["node_acesses"] = {"R1@1": 3}     # typo'd key
        with pytest.raises(ValueError, match="node_acesses"):
            AccessStats.from_dict(doc)

    def test_from_dict_accepts_missing_sections(self):
        back = AccessStats.from_dict({"node_accesses": {"R1@1": 2}})
        assert back.na() == 2
        assert back.da() == 0
        assert back.accounted_backoff == 0.0
