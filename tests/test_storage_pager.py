"""Unit tests for the pager and page-capacity arithmetic."""

import pytest

from repro.storage import (PAGE_SIZE_1K, AccessStats, MeteredReader,
                           NoBuffer, Pager, PathBuffer, node_capacity)


class TestNodeCapacity:
    def test_paper_value_1d(self):
        # The paper: 1 Kbyte pages -> M = 84 for n = 1.
        assert node_capacity(PAGE_SIZE_1K, 1) == 84

    def test_paper_value_2d(self):
        # The paper: 1 Kbyte pages -> M = 50 for n = 2.
        assert node_capacity(PAGE_SIZE_1K, 2) == 50

    def test_bench_scale_values(self):
        assert node_capacity(512, 1) == 41
        assert node_capacity(512, 2) == 24

    def test_capacity_decreases_with_dimension(self):
        caps = [node_capacity(PAGE_SIZE_1K, n) for n in range(1, 6)]
        assert caps == sorted(caps, reverse=True)

    def test_tiny_page_rejected(self):
        with pytest.raises(ValueError):
            node_capacity(16, 2)

    def test_page_smaller_than_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            node_capacity(8, 1)

    def test_bad_ndim_rejected(self):
        with pytest.raises(ValueError):
            node_capacity(1024, 0)

    def test_custom_entry_layout(self):
        # 8-byte coords, 8-byte pointers, no header: entry = 2*2*8+8 = 40.
        assert node_capacity(400, 2, coord_bytes=8, pointer_bytes=8,
                             header_bytes=0) == 10


class TestPager:
    def test_allocate_assigns_distinct_ids(self):
        pager = Pager()
        ids = {pager.allocate() for _ in range(100)}
        assert len(ids) == 100

    def test_write_read_roundtrip(self):
        pager = Pager()
        pid = pager.allocate()
        pager.write(pid, {"payload": 1})
        assert pager.read(pid) == {"payload": 1}

    def test_allocate_with_payload(self):
        pager = Pager()
        pid = pager.allocate("hello")
        assert pager.read(pid) == "hello"

    def test_write_unallocated_raises(self):
        with pytest.raises(KeyError):
            Pager().write(7, "x")

    def test_read_missing_raises(self):
        with pytest.raises(KeyError):
            Pager().read(0)

    def test_free(self):
        pager = Pager()
        pid = pager.allocate("x")
        pager.free(pid)
        assert pid not in pager
        with pytest.raises(KeyError):
            pager.read(pid)

    def test_free_is_idempotent(self):
        pager = Pager()
        pid = pager.allocate()
        pager.free(pid)
        pager.free(pid)  # must not raise

    def test_len_and_contains(self):
        pager = Pager()
        a = pager.allocate()
        assert len(pager) == 1 and a in pager

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            Pager(page_size=0)


class TestMeteredReader:
    def test_counts_node_and_disk_accesses(self):
        pager = Pager()
        pid = pager.allocate("node")
        stats = AccessStats()
        reader = MeteredReader(pager, "T", stats, NoBuffer())
        assert reader.fetch(pid, level=1) == "node"
        assert stats.na("T") == 1
        assert stats.da("T") == 1

    def test_buffer_hit_counts_na_not_da(self):
        pager = Pager()
        pid = pager.allocate("node")
        stats = AccessStats()
        reader = MeteredReader(pager, "T", stats, PathBuffer())
        reader.fetch(pid, level=1)
        reader.fetch(pid, level=1)  # same node again: path-buffer hit
        assert stats.na("T") == 2
        assert stats.da("T") == 1

    def test_levels_recorded_separately(self):
        pager = Pager()
        a, b = pager.allocate("a"), pager.allocate("b")
        stats = AccessStats()
        reader = MeteredReader(pager, "T", stats, NoBuffer())
        reader.fetch(a, level=2)
        reader.fetch(b, level=1)
        assert stats.na("T", level=2) == 1
        assert stats.na("T", level=1) == 1
