"""The TIGER-like road-network generator."""

import pytest

from repro.datasets import LocalDensityGrid, tiger_like_segments, \
    uniform_rectangles
from repro.geometry import Rect


class TestTigerLike:
    def test_cardinality_exact(self):
        for n in (100, 1000, 3333):
            assert tiger_like_segments(n, seed=1).cardinality == n

    def test_two_dimensional(self):
        assert tiger_like_segments(100, seed=2).ndim == 2

    def test_inside_workspace(self):
        ds = tiger_like_segments(2000, seed=3)
        unit = Rect.unit(2)
        assert all(unit.contains(r) for r in ds.rects)

    def test_segments_are_small(self):
        # Road segments have tiny MBRs: that is the trait the real TIGER
        # data has and the cost model sees.
        ds = tiger_like_segments(2000, seed=4, segment_length=0.01)
        assert max(r.extents[0] for r in ds.rects) < 0.1
        assert ds.density() < 0.2

    def test_positive_density(self):
        # Jittered segments yield non-degenerate MBRs overall.
        assert tiger_like_segments(2000, seed=5).density() > 0.0

    def test_strongly_non_uniform(self):
        roads = tiger_like_segments(2000, seed=6)
        flat = uniform_rectangles(2000, roads.density(), 2, seed=6)
        assert LocalDensityGrid(roads, 6).skew_coefficient() > \
            2 * LocalDensityGrid(flat, 6).skew_coefficient()

    def test_reproducible(self):
        assert tiger_like_segments(200, seed=7).rects == \
            tiger_like_segments(200, seed=7).rects

    def test_hub_count_respected(self):
        ds = tiger_like_segments(1000, seed=8, hubs=4)
        assert ds.cardinality == 1000

    def test_empty(self):
        assert tiger_like_segments(0).cardinality == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            tiger_like_segments(-1)
        with pytest.raises(ValueError):
            tiger_like_segments(10, hubs=1)
        with pytest.raises(ValueError):
            tiger_like_segments(10, segment_length=0.0)

    def test_custom_name(self):
        assert tiger_like_segments(10, seed=1,
                                   name="west-tiger").name == "west-tiger"
