"""Observability must not perturb execution: the tentpole guarantee.

Tracing, metrics and the accuracy ledger are write-only hooks; a run
with all three enabled must produce NA/DA counters, result pairs,
comparison counts and checkpoint files that are *bit-identical* to an
unobserved run.  These tests assert exactly that, across both
pair-enumeration backends and both parallel driver modes.
"""

import pytest

from repro.exec import Budget, ExecutionGovernor
from repro.join import SpatialJoin, parallel_spatial_join
from repro.obs import AccuracyLedger, MemorySink, MetricsRegistry, Tracer
from repro.storage import PathBuffer

from .conftest import build_rstar, make_items


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(400, seed=11), max_entries=8)
    t2 = build_rstar(make_items(400, seed=12), max_entries=8)
    return t1, t2


def observed_hooks(sample_pairs=5):
    tracer = Tracer(MemorySink(capacity=100_000),
                    sample_pairs=sample_pairs, sample_buffer=3)
    return tracer, MetricsRegistry(), AccuracyLedger(tracer=tracer)


ENUMS = ["nested-loop", "vectorized"]


class TestSerialJoin:
    @pytest.mark.parametrize("enum", ENUMS)
    def test_counters_bit_identical(self, trees, enum):
        t1, t2 = trees
        plain = SpatialJoin(t1, t2, buffer=PathBuffer(),
                            pair_enumeration=enum).run(collect_pairs=True)
        tracer, metrics, ledger = observed_hooks()
        traced = SpatialJoin(t1, t2, buffer=PathBuffer(),
                             pair_enumeration=enum, tracer=tracer,
                             metrics=metrics,
                             ledger=ledger).run(collect_pairs=True)
        assert traced.stats.as_dict() == plain.stats.as_dict()
        assert sorted(traced.pairs) == sorted(plain.pairs)
        assert traced.pair_count == plain.pair_count
        # ... and the trace actually recorded the run.
        assert any(r["event"] == "node_pair"
                   for r in tracer.sink.records)
        assert metrics.as_dict()["counters"]["join.na"] == plain.na_total

    @pytest.mark.parametrize("enum", ENUMS)
    def test_checkpoint_bytes_identical(self, trees, enum, tmp_path):
        t1, t2 = trees

        def partial_run(observe, path):
            governor = ExecutionGovernor(Budget(max_na=40), partial=True)
            kwargs = {}
            if observe:
                tracer, metrics, ledger = observed_hooks()
                kwargs = dict(tracer=tracer, metrics=metrics,
                              ledger=ledger)
            sj = SpatialJoin(t1, t2, buffer=PathBuffer(),
                             pair_enumeration=enum, governor=governor,
                             **kwargs)
            result = sj.run(collect_pairs=False)
            result.checkpoint.save(path)
            return result

        plain = partial_run(False, str(tmp_path / "plain.json"))
        traced = partial_run(True, str(tmp_path / "traced.json"))
        assert not plain.complete and not traced.complete
        assert (tmp_path / "traced.json").read_bytes() == \
            (tmp_path / "plain.json").read_bytes()
        assert traced.stats.as_dict() == plain.stats.as_dict()


class TestParallelJoin:
    @pytest.mark.parametrize("mode", ["threads", "processes"])
    @pytest.mark.parametrize("enum", ENUMS)
    def test_counters_bit_identical(self, trees, mode, enum):
        t1, t2 = trees
        plain = parallel_spatial_join(t1, t2, 3, mode=mode,
                                      pair_enumeration=enum)
        tracer, metrics, _ = observed_hooks()
        traced = parallel_spatial_join(t1, t2, 3, mode=mode,
                                       pair_enumeration=enum,
                                       tracer=tracer, metrics=metrics)
        assert traced.total_na == plain.total_na
        assert traced.total_da == plain.total_da
        assert sorted(traced.pairs) == sorted(plain.pairs)
        for got, want in zip(traced.worker_stats, plain.worker_stats):
            assert got.as_dict() == want.as_dict()
        counters = metrics.as_dict()["counters"]
        assert counters["worker.na"] == plain.total_na
        assert counters["worker.da"] == plain.total_da
        finishes = [r for r in tracer.sink.records
                    if r["event"] == "worker_finish"]
        assert len(finishes) == 3
        # Coordinator emits worker events in bucket order, so the
        # trace itself is deterministic too.
        assert [r["worker"] for r in finishes] == [0, 1, 2]


class TestAccuracyLedgerIntegration:
    def test_ledger_matches_run_stats_exactly(self, trees):
        t1, t2 = trees
        governor = ExecutionGovernor(Budget(max_na=10_000))
        tracer, metrics, ledger = observed_hooks()
        result = SpatialJoin(t1, t2, buffer=PathBuffer(),
                             governor=governor, tracer=tracer,
                             metrics=metrics,
                             ledger=ledger).run(collect_pairs=False)
        assert result.complete
        [rec] = ledger.records
        assert rec.na_observed == result.stats.na()
        assert rec.da_observed == result.stats.da()
        assert rec.pairs == result.pair_count
        assert rec.per_level["node_accesses"] == \
            result.stats.as_dict()["node_accesses"]
        assert rec.na_estimated is not None      # Eq. 7 was available
        # ... and the trace carries the same row as an accuracy event.
        [event] = [r for r in tracer.sink.records
                   if r["event"] == "accuracy"]
        assert event["na_observed"] == result.stats.na()
        assert event["da_observed"] == result.stats.da()

    def test_partial_run_records_no_ledger_row(self, trees):
        t1, t2 = trees
        governor = ExecutionGovernor(Budget(max_na=40), partial=True)
        tracer, metrics, ledger = observed_hooks()
        result = SpatialJoin(t1, t2, buffer=PathBuffer(),
                             governor=governor, tracer=tracer,
                             metrics=metrics,
                             ledger=ledger).run(collect_pairs=False)
        assert not result.complete
        assert ledger.records == []      # incomplete runs never enter
        [finish] = [r for r in tracer.sink.records
                    if r["event"] == "join_finish"]
        assert finish["complete"] is False
