"""The cost-based optimizer."""

import pytest

from repro.costmodel import join_da_total, join_na_total
from repro.optimizer import (Catalog, IndexNestedLoopPlan, IndexScanPlan,
                             SpatialJoinPlan, best_plan,
                             make_index_nested_loop, make_spatial_join,
                             role_advice)
from repro.datasets import uniform_rectangles


def sample_catalog():
    cat = Catalog(max_entries=24)
    cat.register_stats("countries", 1000, 0.4, 2)
    cat.register_stats("rivers", 4000, 0.2, 2)
    cat.register_stats("roads", 9000, 0.1, 2)
    return cat


class TestCatalog:
    def test_register_stats(self):
        cat = sample_catalog()
        entry = cat.get("rivers")
        assert entry.cardinality == 4000
        assert entry.density == 0.2

    def test_register_dataset_measures(self):
        cat = Catalog(max_entries=16)
        ds = uniform_rectangles(500, 0.4, 2, seed=1)
        entry = cat.register_dataset("lakes", ds)
        assert entry.cardinality == 500
        assert entry.density == pytest.approx(0.4)

    def test_missing_relation(self):
        with pytest.raises(KeyError, match="not in the catalog"):
            sample_catalog().get("oceans")

    def test_names_and_contains(self):
        cat = sample_catalog()
        assert cat.names() == ["countries", "rivers", "roads"]
        assert "rivers" in cat and "oceans" not in cat
        assert len(cat) == 3

    def test_average_extents(self):
        cat = sample_catalog()
        e = cat.get("countries")
        assert e.average_extents == pytest.approx(((0.4 / 1000) ** 0.5,) * 2)


class TestPlanCosting:
    def test_sj_cost_matches_formula(self):
        cat = sample_catalog()
        a, b = cat.get("countries"), cat.get("rivers")
        plan = make_spatial_join(IndexScanPlan(a), IndexScanPlan(b), "da")
        assert plan.cost == pytest.approx(join_da_total(a.params, b.params))

    def test_sj_na_metric(self):
        cat = sample_catalog()
        a, b = cat.get("countries"), cat.get("rivers")
        plan = make_spatial_join(IndexScanPlan(a), IndexScanPlan(b), "na")
        assert plan.cost == pytest.approx(join_na_total(a.params, b.params))

    def test_bad_metric_rejected(self):
        cat = sample_catalog()
        with pytest.raises(ValueError):
            make_spatial_join(IndexScanPlan(cat.get("countries")),
                              IndexScanPlan(cat.get("rivers")), "wallclock")

    def test_inl_cost_includes_stream(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        inl = make_index_nested_loop(sj, IndexScanPlan(cat.get("countries")))
        assert inl.cost > sj.cost

    def test_plan_relations(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        assert sj.relations() == frozenset({"roads", "rivers"})

    def test_out_cardinality_positive(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        assert sj.out_cardinality > 0

    def test_describe_renders_tree(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        text = sj.describe()
        assert "SpatialJoin" in text and "roads" in text and "rivers" in text


class TestRoleAdvice:
    def test_prefers_small_query_tree_for_equal_heights(self):
        cat = Catalog(max_entries=24)
        cat.register_stats("small", 2000, 0.5, 2)
        cat.register_stats("big", 4000, 0.5, 2)
        data, query, cost, alt = role_advice(cat, "small", "big")
        assert (data, query) == ("big", "small")
        assert cost <= alt

    def test_na_metric_indifferent(self):
        cat = sample_catalog()
        _d, _q, cost, alt = role_advice(cat, "countries", "rivers",
                                        metric="na")
        assert cost == pytest.approx(alt)

    def test_returns_costs_for_both_assignments(self):
        cat = sample_catalog()
        _d, _q, cost, alt = role_advice(cat, "countries", "roads")
        assert cost <= alt


class TestBestPlan:
    def test_two_way_chooses_cheaper_role(self):
        cat = sample_catalog()
        plan = best_plan(cat, ["countries", "rivers"])
        assert isinstance(plan, SpatialJoinPlan)
        data, query, cost, _alt = role_advice(cat, "countries", "rivers")
        assert plan.cost == pytest.approx(cost)
        assert plan.data.entry.name == data
        assert plan.query.entry.name == query

    def test_three_way_covers_all_relations(self):
        cat = sample_catalog()
        plan = best_plan(cat, ["countries", "rivers", "roads"])
        assert plan.relations() == frozenset(
            {"countries", "rivers", "roads"})
        assert isinstance(plan, IndexNestedLoopPlan)

    def test_three_way_beats_naive_order(self):
        # The DP must be at least as good as any fixed pipeline.
        cat = sample_catalog()
        best = best_plan(cat, ["countries", "rivers", "roads"])
        scans = {n: IndexScanPlan(cat.get(n)) for n in cat.names()}
        fixed = make_index_nested_loop(
            make_spatial_join(scans["countries"], scans["rivers"]),
            scans["roads"])
        assert best.cost <= fixed.cost + 1e-9

    def test_requires_two_relations(self):
        with pytest.raises(ValueError):
            best_plan(sample_catalog(), ["countries"])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            best_plan(sample_catalog(), ["rivers", "rivers"])

    def test_rejects_mixed_dimensionality(self):
        cat = Catalog(max_entries=24)
        cat.register_stats("a", 100, 0.2, 1)
        cat.register_stats("b", 100, 0.2, 2)
        with pytest.raises(ValueError):
            best_plan(cat, ["a", "b"])

    def test_na_metric_supported(self):
        plan = best_plan(sample_catalog(),
                         ["countries", "rivers", "roads"], metric="na")
        assert plan.cost > 0
