"""The cost-based optimizer."""

import pytest

from repro.costmodel import join_da_total, join_na_total
from repro.obs import MemorySink, Tracer
from repro.optimizer import (Catalog, IndexNestedLoopPlan, IndexScanPlan,
                             PBSMJoinPlan, SpatialJoinPlan, best_plan,
                             make_index_nested_loop, make_pbsm_join,
                             make_spatial_join, role_advice)
from repro.datasets import uniform_rectangles


def sample_catalog():
    cat = Catalog(max_entries=24)
    cat.register_stats("countries", 1000, 0.4, 2)
    cat.register_stats("rivers", 4000, 0.2, 2)
    cat.register_stats("roads", 9000, 0.1, 2)
    return cat


def skewed_catalog():
    # Wildly asymmetric cardinalities: the synchronized traversal
    # prunes the big tree through the small one and the path buffer
    # absorbs revisits, so SJ undercuts PBSM's full scan of both
    # trees.  The buffer-bound counterpart to sample_catalog, whose
    # comparably-sized relations favor the partition engine.
    cat = Catalog(max_entries=24)
    cat.register_stats("parcels", 50000, 0.05, 2)
    cat.register_stats("stations", 200, 0.05, 2)
    return cat


class TestCatalog:
    def test_register_stats(self):
        cat = sample_catalog()
        entry = cat.get("rivers")
        assert entry.cardinality == 4000
        assert entry.density == 0.2

    def test_register_dataset_measures(self):
        cat = Catalog(max_entries=16)
        ds = uniform_rectangles(500, 0.4, 2, seed=1)
        entry = cat.register_dataset("lakes", ds)
        assert entry.cardinality == 500
        assert entry.density == pytest.approx(0.4)

    def test_missing_relation(self):
        with pytest.raises(KeyError, match="not in the catalog"):
            sample_catalog().get("oceans")

    def test_names_and_contains(self):
        cat = sample_catalog()
        assert cat.names() == ["countries", "rivers", "roads"]
        assert "rivers" in cat and "oceans" not in cat
        assert len(cat) == 3

    def test_average_extents(self):
        cat = sample_catalog()
        e = cat.get("countries")
        assert e.average_extents == pytest.approx(((0.4 / 1000) ** 0.5,) * 2)


class TestPlanCosting:
    def test_sj_cost_matches_formula(self):
        cat = sample_catalog()
        a, b = cat.get("countries"), cat.get("rivers")
        plan = make_spatial_join(IndexScanPlan(a), IndexScanPlan(b), "da")
        assert plan.cost == pytest.approx(join_da_total(a.params, b.params))

    def test_sj_na_metric(self):
        cat = sample_catalog()
        a, b = cat.get("countries"), cat.get("rivers")
        plan = make_spatial_join(IndexScanPlan(a), IndexScanPlan(b), "na")
        assert plan.cost == pytest.approx(join_na_total(a.params, b.params))

    def test_bad_metric_rejected(self):
        cat = sample_catalog()
        with pytest.raises(ValueError):
            make_spatial_join(IndexScanPlan(cat.get("countries")),
                              IndexScanPlan(cat.get("rivers")), "wallclock")

    def test_inl_cost_includes_stream(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        inl = make_index_nested_loop(sj, IndexScanPlan(cat.get("countries")))
        assert inl.cost > sj.cost

    def test_plan_relations(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        assert sj.relations() == frozenset({"roads", "rivers"})

    def test_out_cardinality_positive(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        assert sj.out_cardinality > 0

    def test_describe_renders_tree(self):
        cat = sample_catalog()
        sj = make_spatial_join(IndexScanPlan(cat.get("roads")),
                               IndexScanPlan(cat.get("rivers")))
        text = sj.describe()
        assert "SpatialJoin" in text and "roads" in text and "rivers" in text


class TestRoleAdvice:
    def test_prefers_small_query_tree_for_equal_heights(self):
        cat = Catalog(max_entries=24)
        cat.register_stats("small", 2000, 0.5, 2)
        cat.register_stats("big", 4000, 0.5, 2)
        data, query, cost, alt = role_advice(cat, "small", "big")
        assert (data, query) == ("big", "small")
        assert cost <= alt

    def test_na_metric_indifferent(self):
        cat = sample_catalog()
        _d, _q, cost, alt = role_advice(cat, "countries", "rivers",
                                        metric="na")
        assert cost == pytest.approx(alt)

    def test_returns_costs_for_both_assignments(self):
        cat = sample_catalog()
        _d, _q, cost, alt = role_advice(cat, "countries", "roads")
        assert cost <= alt


class TestPBSMCosting:
    def test_cost_is_both_trees_nonroot_pages(self):
        cat = sample_catalog()
        a, b = cat.get("countries"), cat.get("rivers")
        plan = make_pbsm_join(IndexScanPlan(a), IndexScanPlan(b))
        expected = 0.0
        for params in (a.params, b.params):
            expected += sum(params.nodes_at(j)
                            for j in range(1, params.height))
        assert plan.cost == pytest.approx(expected)

    def test_role_symmetric(self):
        cat = sample_catalog()
        a = IndexScanPlan(cat.get("countries"))
        b = IndexScanPlan(cat.get("rivers"))
        assert make_pbsm_join(a, b).cost == \
            pytest.approx(make_pbsm_join(b, a).cost)

    def test_metric_indifferent(self):
        # One sequential pass per tree: every page is read exactly
        # once, so the buffered and unbuffered prices coincide.
        cat = sample_catalog()
        a = IndexScanPlan(cat.get("countries"))
        b = IndexScanPlan(cat.get("roads"))
        assert make_pbsm_join(a, b, "na").cost == \
            pytest.approx(make_pbsm_join(a, b, "da").cost)

    def test_bad_metric_rejected(self):
        cat = sample_catalog()
        with pytest.raises(ValueError):
            make_pbsm_join(IndexScanPlan(cat.get("countries")),
                           IndexScanPlan(cat.get("rivers")), "wallclock")

    def test_rejects_mixed_dimensionality(self):
        cat = Catalog(max_entries=24)
        cat.register_stats("a", 100, 0.2, 1)
        cat.register_stats("b", 100, 0.2, 2)
        with pytest.raises(ValueError, match="dimensionality"):
            make_pbsm_join(IndexScanPlan(cat.get("a")),
                           IndexScanPlan(cat.get("b")))

    def test_describe_renders_tree(self):
        cat = sample_catalog()
        plan = make_pbsm_join(IndexScanPlan(cat.get("roads")),
                              IndexScanPlan(cat.get("rivers")))
        text = plan.describe()
        assert "PBSMJoin" in text and "roads" in text and "rivers" in text
        assert plan.out_cardinality > 0


class TestBestPlan:
    def test_two_way_chooses_cheaper_role(self):
        cat = skewed_catalog()
        plan = best_plan(cat, ["parcels", "stations"])
        assert isinstance(plan, SpatialJoinPlan)
        data, query, cost, _alt = role_advice(cat, "parcels", "stations")
        assert plan.cost == pytest.approx(cost)
        assert plan.data.entry.name == data
        assert plan.query.entry.name == query

    def test_two_way_prefers_pbsm_for_comparable_inputs(self):
        # countries/rivers are close enough in size that scanning both
        # trees once beats the traversal's repeated descents.
        cat = sample_catalog()
        plan = best_plan(cat, ["countries", "rivers"])
        assert isinstance(plan, PBSMJoinPlan)
        sj_cost = role_advice(cat, "countries", "rivers")[2]
        assert plan.cost < sj_cost

    def test_two_way_prefers_sj_for_skewed_inputs(self):
        cat = skewed_catalog()
        plan = best_plan(cat, ["parcels", "stations"])
        assert isinstance(plan, SpatialJoinPlan)
        pbsm = make_pbsm_join(IndexScanPlan(cat.get("parcels")),
                              IndexScanPlan(cat.get("stations")))
        assert plan.cost < pbsm.cost

    def test_plan_choice_recorded_in_trace(self):
        for catalog, names, chosen, plan_name in [
                (sample_catalog(), ["countries", "rivers"],
                 "pbsm", "PBSMJoinPlan"),
                (skewed_catalog(), ["parcels", "stations"],
                 "sj", "SpatialJoinPlan")]:
            sink = MemorySink()
            best_plan(catalog, names, tracer=Tracer(sink))
            candidates = next(e for e in sink.records
                              if e["event"] == "plan_candidates")
            assert candidates["relations"] == sorted(names)
            assert candidates["chosen"] == chosen
            assert candidates["sj_cost"] > 0
            assert candidates["pbsm_cost"] > 0
            choice = next(e for e in sink.records
                          if e["event"] == "plan_choice")
            assert choice["plan"] == plan_name
            assert choice["cost"] > 0

    def test_three_way_covers_all_relations(self):
        cat = sample_catalog()
        plan = best_plan(cat, ["countries", "rivers", "roads"])
        assert plan.relations() == frozenset(
            {"countries", "rivers", "roads"})
        assert isinstance(plan, IndexNestedLoopPlan)

    def test_three_way_beats_naive_order(self):
        # The DP must be at least as good as any fixed pipeline.
        cat = sample_catalog()
        best = best_plan(cat, ["countries", "rivers", "roads"])
        scans = {n: IndexScanPlan(cat.get(n)) for n in cat.names()}
        fixed = make_index_nested_loop(
            make_spatial_join(scans["countries"], scans["rivers"]),
            scans["roads"])
        assert best.cost <= fixed.cost + 1e-9

    def test_requires_two_relations(self):
        with pytest.raises(ValueError):
            best_plan(sample_catalog(), ["countries"])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            best_plan(sample_catalog(), ["rivers", "rivers"])

    def test_rejects_mixed_dimensionality(self):
        cat = Catalog(max_entries=24)
        cat.register_stats("a", 100, 0.2, 1)
        cat.register_stats("b", 100, 0.2, 2)
        with pytest.raises(ValueError):
            best_plan(cat, ["a", "b"])

    def test_na_metric_supported(self):
        plan = best_plan(sample_catalog(),
                         ["countries", "rivers", "roads"], metric="na")
        assert plan.cost > 0
