"""Domain guards: Eqs. 1-12 reject inputs they cannot price.

Regression tests for every guard added to the model entry points —
before them, NaN/inf primitives silently produced NaN cost estimates.
"""

import math

import pytest

from repro.costmodel import (AnalyticalTreeParams, check_model_params,
                             intsect, join_da_total, join_na_total,
                             range_query_na, rtree_height)
from repro.reliability import ModelDomainError

NAN = float("nan")
INF = float("inf")


def params(n=1000, d=0.5, m=50, ndim=2, **kw):
    return AnalyticalTreeParams(n, d, m, ndim, **kw)


class TestConstructorGuards:
    def test_negative_n_rejected(self):
        with pytest.raises(ModelDomainError):
            params(n=-1)

    def test_non_integer_n_rejected(self):
        with pytest.raises(ModelDomainError):
            params(n=1000.5)
        with pytest.raises(ModelDomainError):
            params(n=NAN)

    def test_nan_density_rejected(self):
        with pytest.raises(ModelDomainError, match="finite"):
            params(d=NAN)

    def test_inf_density_rejected(self):
        with pytest.raises(ModelDomainError, match="finite"):
            params(d=INF)

    def test_negative_density_rejected(self):
        with pytest.raises(ModelDomainError):
            params(d=-0.1)

    def test_bad_ndim_rejected(self):
        with pytest.raises(ModelDomainError, match="ndim"):
            params(ndim=0)

    def test_nan_fill_rejected(self):
        with pytest.raises(ModelDomainError, match="fill"):
            params(fill=NAN)

    def test_guards_are_value_errors(self):
        # Backward compatible: callers catching ValueError still work.
        with pytest.raises(ValueError):
            params(d=-1.0)

    def test_empty_set_still_constructible(self):
        # N = 0 stays legal at construction (degenerate empty data set);
        # only the cost entry points refuse it.
        p = AnalyticalTreeParams(0, 0.0, 50, 2)
        assert p.height == 1

    def test_rtree_height_guards(self):
        with pytest.raises(ModelDomainError):
            rtree_height(-5, 50)
        with pytest.raises(ModelDomainError):
            rtree_height(NAN, 50)
        with pytest.raises(ModelDomainError):
            rtree_height(1000, 50, fill=NAN)


class TestEntryPointGuards:
    def test_join_na_rejects_empty_tree(self):
        p0 = AnalyticalTreeParams(0, 0.0, 50, 2)
        with pytest.raises(ModelDomainError, match="N >= 1"):
            join_na_total(p0, params())
        with pytest.raises(ModelDomainError, match="N >= 1"):
            join_na_total(params(), p0)

    def test_join_da_rejects_empty_tree(self):
        p0 = AnalyticalTreeParams(0, 0.0, 50, 2)
        with pytest.raises(ModelDomainError, match="N >= 1"):
            join_da_total(params(), p0)

    def test_range_query_rejects_empty_tree(self):
        p0 = AnalyticalTreeParams(0, 0.0, 50, 2)
        with pytest.raises(ModelDomainError, match="N >= 1"):
            range_query_na(p0, (0.1, 0.1))

    def test_range_query_rejects_nan_window(self):
        with pytest.raises(ModelDomainError, match="finite"):
            range_query_na(params(), (NAN, 0.1))

    def test_range_query_rejects_inf_window(self):
        with pytest.raises(ModelDomainError, match="finite"):
            range_query_na(params(), (0.1, INF))

    def test_intsect_rejects_nan(self):
        with pytest.raises(ModelDomainError):
            intsect(NAN, (0.1, 0.1), (0.1, 0.1))
        with pytest.raises(ModelDomainError):
            intsect(100, (NAN, 0.1), (0.1, 0.1))
        with pytest.raises(ModelDomainError):
            intsect(100, (0.1, 0.1), (0.1, NAN))

    def test_valid_inputs_stay_finite(self):
        na = join_na_total(params(), params(n=2000, d=0.3))
        da = join_da_total(params(), params(n=2000, d=0.3))
        assert math.isfinite(na) and na >= 0
        assert math.isfinite(da) and da >= 0

    def test_check_model_params_direct(self):
        check_model_params(params())    # no raise
        bad = params()
        bad.height = 0
        with pytest.raises(ModelDomainError, match="height"):
            check_model_params(bad)
