"""The command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGenerateInspect:
    def test_generate_uniform(self, tmp_path, capsys):
        out_file = tmp_path / "u.txt"
        code, out, _err = run(capsys, "generate", "uniform", "-n", "100",
                              "-d", "0.3", "--seed", "1",
                              "-o", str(out_file))
        assert code == 0
        assert out_file.exists()
        assert "N=100" in out

    @pytest.mark.parametrize("kind", ["clustered", "zipf", "diagonal",
                                      "tiger"])
    def test_generate_all_kinds(self, tmp_path, capsys, kind):
        out_file = tmp_path / f"{kind}.txt"
        code, _out, _err = run(capsys, "generate", kind, "-n", "60",
                               "--seed", "2", "-o", str(out_file))
        assert code == 0

    def test_tiger_rejects_1d(self, tmp_path, capsys):
        code, _out, err = run(capsys, "generate", "tiger", "-n", "10",
                              "--ndim", "1",
                              "-o", str(tmp_path / "x.txt"))
        assert code == 2
        assert "two-dimensional" in err

    def test_inspect(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        run(capsys, "generate", "uniform", "-n", "150", "-d", "0.4",
            "--seed", "3", "-o", str(data))
        code, out, _err = run(capsys, "inspect", str(data))
        assert code == 0
        assert "cardinality: 150" in out
        assert "density:     0.4" in out

    def test_inspect_missing_file(self, capsys):
        code, _out, err = run(capsys, "inspect", "/nonexistent/d.txt")
        assert code == 2
        assert "error:" in err


class TestBuildJoinEstimate:
    @pytest.fixture
    def two_trees(self, tmp_path, capsys):
        paths = []
        for seed in (4, 5):
            data = tmp_path / f"d{seed}.txt"
            tree = tmp_path / f"t{seed}.json"
            run(capsys, "generate", "uniform", "-n", "300", "-d", "0.5",
                "--seed", str(seed), "-o", str(data))
            run(capsys, "build", str(data), "-M", "16",
                "-o", str(tree))
            paths.append(tree)
        return paths

    def test_build_reports_structure(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        run(capsys, "generate", "uniform", "-n", "200", "--seed", "6",
            "-o", str(data))
        code, out, _err = run(capsys, "build", str(data), "-M", "16",
                              "--variant", "str",
                              "-o", str(tmp_path / "t.json"))
        assert code == 0
        assert "built str tree" in out and "height" in out

    def test_join(self, two_trees, capsys):
        code, out, _err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]))
        assert code == 0
        assert "result pairs:" in out
        assert "node accesses NA:" in out
        assert "analytical:" in out

    def test_join_buffer_specs(self, two_trees, capsys):
        for spec in ("none", "path", "lru:16"):
            code, _out, _err = run(capsys, "join", str(two_trees[0]),
                                   str(two_trees[1]), "--buffer", spec)
            assert code == 0

    def test_join_traversal_level_batch_matches_stack(self, two_trees,
                                                      capsys):
        def counters(text):
            return [line for line in text.splitlines()
                    if line.startswith(("result pairs:",
                                        "node accesses NA:",
                                        "disk accesses DA:"))]
        code, out, _err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]))
        assert code == 0
        code, batch_out, _err = run(capsys, "join", "--traversal",
                                    "level-batch", str(two_trees[0]),
                                    str(two_trees[1]))
        assert code == 0
        assert counters(batch_out) == counters(out)

    def test_join_bad_traversal(self, two_trees, capsys):
        with pytest.raises(SystemExit):     # argparse choices
            run(capsys, "join", str(two_trees[0]), str(two_trees[1]),
                "--traversal", "magic")

    def test_join_pbsm_strategy_matches_sync(self, two_trees, capsys):
        def counters(text):
            return [line for line in text.splitlines()
                    if line.startswith("result pairs")]
        code, out, _err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]))
        assert code == 0
        code, pbsm_out, _err = run(capsys, "join", "--strategy", "pbsm",
                                   str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert counters(pbsm_out) == counters(out)

    def test_join_pbsm_rejects_checkpointing(self, two_trees, tmp_path,
                                             capsys):
        code, _out, err = run(capsys, "join", "--strategy", "pbsm",
                              "--checkpoint",
                              str(tmp_path / "cp.json"),
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 2
        assert "pbsm" in err and "resumable" in err

    def test_join_bad_buffer(self, two_trees, capsys):
        code, _out, err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]), "--buffer", "magic")
        assert code == 2
        assert "buffer" in err

    def test_report_renders_bench_snapshot(self, tmp_path, capsys):
        import json
        bench = tmp_path / "BENCH_join.json"
        bench.write_text(json.dumps({
            "batch_traversal": {"speedup": 3.5,
                                "assert_skipped": False},
            "process_join": {"speedup": 0.9, "assert_skipped": True},
        }))
        code, out, _err = run(capsys, "report", str(bench))
        assert code == 0
        assert "benchmarks: 2 entries" in out
        assert "batch_traversal: speedup 3.50x" in out
        assert "assert skipped" in out   # process_join's flag rendered

    def test_report_renders_pre_assert_skipped_snapshot(self, tmp_path,
                                                        capsys):
        # Snapshots written before the assert_skipped field existed
        # crashed `repro report` by falling through to the JSONL trace
        # parser; they must render with a sensible default (no skip
        # label).
        import json
        bench = tmp_path / "BENCH_join.json"
        bench.write_text(json.dumps({
            "parallel_join": {"speedup": 2.1, "workers": 4},
            "schema": 1,                  # flat, non-dict entry
        }))
        code, out, err = run(capsys, "report", str(bench))
        assert code == 0, err
        assert "benchmarks: 2 entries" in out
        assert "parallel_join: speedup 2.10x" in out
        assert "assert skipped" not in out

    def test_report_renders_flat_snapshot(self, tmp_path, capsys):
        # Entirely flat snapshots (e.g. old BENCH_estimator.json) are
        # snapshots too — any JSON object without an "event" key must
        # route to the bench renderer, never the trace parser.
        import json
        bench = tmp_path / "BENCH_estimator.json"
        bench.write_text(json.dumps({"throughput": 12345.6,
                                     "batch": 4096}))
        code, out, err = run(capsys, "report", str(bench))
        assert code == 0, err
        assert "benchmarks: 2 entries" in out
        assert "12345.6" in out

    def test_join_trace_metrics_report(self, two_trees, tmp_path,
                                       capsys):
        """Governed traced join -> JSONL trace -> `repro report`."""
        trace = tmp_path / "trace.jsonl"
        code, out, _err = run(capsys, "join", "--max-na", "100000",
                              "--trace", str(trace), "--metrics",
                              "--sample-pairs", "10",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert "metric join.na:" in out
        assert "estimator accuracy:" in out
        assert f"trace written to {trace}" in out

        import json
        records = [json.loads(line) for line in
                   trace.read_text().splitlines()]
        events = {r["event"] for r in records}
        assert {"join_start", "node_pair", "join_finish", "accuracy",
                "metrics"} <= events

        # The traced counters equal the printed ones exactly.
        [finish] = [r for r in records if r["event"] == "join_finish"]
        assert f"node accesses NA: {finish['na']}" in out
        assert f"disk accesses DA: {finish['da']}" in out
        [acc] = [r for r in records if r["event"] == "accuracy"]
        assert acc["na_observed"] == finish["na"]
        assert acc["da_observed"] == finish["da"]

        code, out, _err = run(capsys, "report", str(trace))
        assert code == 0
        assert "estimator accuracy" in out
        assert "join.na" in out

    def test_join_traced_counters_match_untraced(self, two_trees,
                                                 tmp_path, capsys):
        _code, plain, _err = run(capsys, "join", str(two_trees[0]),
                                 str(two_trees[1]))
        trace = tmp_path / "t.jsonl"
        _code, traced, _err = run(capsys, "join", "--trace", str(trace),
                                  str(two_trees[0]), str(two_trees[1]))
        pick = lambda out: [line for line in out.splitlines()
                            if line.startswith(("result pairs",
                                                "node accesses",
                                                "disk accesses"))]
        assert pick(traced) == pick(plain)

    def test_join_workers_trace_metrics(self, two_trees, tmp_path,
                                        capsys):
        trace = tmp_path / "par.jsonl"
        code, out, _err = run(capsys, "join", "--workers", "2",
                              "--trace", str(trace), "--metrics",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert "metric worker.na:" in out
        import json
        records = [json.loads(line) for line in
                   trace.read_text().splitlines()]
        finishes = [r for r in records if r["event"] == "worker_finish"]
        assert [r["worker"] for r in finishes] == [0, 1]

    def test_estimate(self, capsys):
        code, out, _err = run(capsys, "estimate", "--n1", "20000",
                              "--d1", "0.5", "--n2", "60000",
                              "--d2", "0.5", "-M", "50")
        assert code == 0
        assert "NA_total" in out
        assert "role advice" in out

    def test_estimate_missing_args(self, capsys):
        code, _out, err = run(capsys, "estimate", "--n1", "20000",
                              "--d1", "0.5")
        assert code == 2
        assert "--n2 --d2" in err and "--batch" in err

    def test_estimate_batch(self, tmp_path, capsys):
        import json
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps([
            {"n1": 20000, "d1": 0.5, "n2": 60000, "d2": 0.5,
             "max_entries": 50, "window": [0.1, 0.1]},
            {"n1": 1000, "d1": 0.2, "n2": 1000, "d2": 0.2,
             "distance": 0.02, "label": "tiny"},
        ]))
        out_file = tmp_path / "est.json"
        code, out, _err = run(capsys, "estimate", "--batch", str(grid),
                              "-o", str(out_file))
        assert code == 0
        assert "wrote 2 estimates" in out
        payload = json.loads(out_file.read_text())
        assert payload["backend"] in ("numpy", "python")
        assert len(payload["results"]) == 2
        first, second = payload["results"]
        assert first["na"] > 0 and "range_na" in first
        assert second["label"] == "tiny" and "range_na" not in second

    def test_estimate_batch_to_stdout(self, tmp_path, capsys):
        import json
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps(
            [{"n1": 500, "d1": 0.5, "n2": 500, "d2": 0.5}]))
        code, out, _err = run(capsys, "estimate", "--batch", str(grid))
        assert code == 0
        assert json.loads(out)["results"][0]["da"] > 0

    def test_estimate_batch_bad_records(self, tmp_path, capsys):
        import json
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps([{"n1": 500, "d1": 0.5}]))
        code, _out, err = run(capsys, "estimate", "--batch", str(grid))
        assert code == 2
        assert "missing required field" in err
        grid.write_text(json.dumps({"n1": 500}))
        code, _out, err = run(capsys, "estimate", "--batch", str(grid))
        assert code == 2
        assert "JSON list" in err

    def test_figures(self, capsys):
        code, out, _err = run(capsys, "figures")
        assert code == 0
        for label in ("Figure 6a", "Figure 6b", "Figure 7a",
                      "Figure 7b"):
            assert label in out


class TestQueryCommand:
    @pytest.fixture
    def saved_tree(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        tree = tmp_path / "t.json"
        run(capsys, "generate", "uniform", "-n", "200", "-d", "0.5",
            "--seed", "11", "-o", str(data))
        run(capsys, "build", str(data), "-M", "16", "-o", str(tree))
        return tree

    def test_range_query(self, saved_tree, capsys):
        code, out, _err = run(capsys, "query", str(saved_tree),
                              "--window", "0.2", "0.2", "0.5", "0.5")
        assert code == 0
        assert "range query" in out
        assert "node accesses:" in out

    def test_knn_query(self, saved_tree, capsys):
        code, out, _err = run(capsys, "query", str(saved_tree),
                              "--knn", "0.5", "0.5", "-k", "5")
        assert code == 0
        assert out.count("oid ") == 5

    def test_window_arity_checked(self, saved_tree, capsys):
        code, _out, err = run(capsys, "query", str(saved_tree),
                              "--window", "0.2", "0.2", "0.5")
        assert code == 2
        assert "coordinates" in err

    def test_knn_arity_checked(self, saved_tree, capsys):
        code, _out, err = run(capsys, "query", str(saved_tree),
                              "--knn", "0.5")
        assert code == 2
        assert "coordinates" in err


class TestExperimentCommand:
    def test_analytic_experiment(self, capsys):
        code, out, _err = run(capsys, "experiment", "fig6a")
        assert code == 0
        assert "anal(NA)" in out

    def test_unknown_id(self, capsys):
        code, _out, err = run(capsys, "experiment", "fig42")
        assert code == 2
        assert "unknown experiment" in err


class TestReliabilityCli:
    """Structured exit codes, degraded loads, verify, chaos joins."""

    @pytest.fixture
    def saved_tree(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        tree = tmp_path / "t.json"
        run(capsys, "generate", "uniform", "-n", "250", "-d", "0.5",
            "--seed", "13", "-o", str(data))
        run(capsys, "build", str(data), "-M", "8", "-o", str(tree))
        return tree

    @pytest.fixture
    def two_trees(self, tmp_path, capsys):
        paths = []
        for seed in (14, 15):
            data = tmp_path / f"d{seed}.txt"
            tree = tmp_path / f"t{seed}.json"
            run(capsys, "generate", "uniform", "-n", "250", "-d", "0.5",
                "--seed", str(seed), "-o", str(data))
            run(capsys, "build", str(data), "-M", "8", "-o", str(tree))
            paths.append(tree)
        return paths

    @staticmethod
    def corrupt_leaf(path):
        import json
        doc = json.loads(path.read_text())
        victim = min(int(p) for p, n in doc["nodes"].items()
                     if n["level"] == 1 and int(p) != doc["root_id"])
        payload = doc["nodes"][str(victim)]
        payload["entries"][0][0][0] += 0.125   # CRC left stale
        path.write_text(json.dumps(doc))

    def test_truncated_json_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 2, "ndim"')
        code, _out, err = run(capsys, "query", str(bad),
                              "--window", "0", "0", "1", "1")
        assert code == 2
        assert "invalid JSON" in err

    def test_missing_field_is_usage_error(self, saved_tree, capsys):
        import json
        doc = json.loads(saved_tree.read_text())
        del doc["root_id"]
        saved_tree.write_text(json.dumps(doc))
        code, _out, err = run(capsys, "query", str(saved_tree),
                              "--window", "0", "0", "1", "1")
        assert code == 2
        assert "root_id" in err

    def test_corruption_is_exit_3(self, two_trees, capsys):
        self.corrupt_leaf(two_trees[0])
        code, _out, err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]))
        assert code == 3
        assert "corrupt" in err

    def test_lenient_join_degrades_with_warning(self, two_trees, capsys):
        self.corrupt_leaf(two_trees[0])
        code, out, err = run(capsys, "join", "--lenient",
                             str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert "degraded load" in err
        assert "result pairs:" in out

    def test_verify_clean(self, saved_tree, capsys):
        code, out, _err = run(capsys, "verify", str(saved_tree))
        assert code == 0
        assert "clean" in out

    def test_verify_corrupt(self, saved_tree, capsys):
        self.corrupt_leaf(saved_tree)
        code, out, _err = run(capsys, "verify", str(saved_tree))
        assert code == 3
        assert "CORRUPT" in out
        assert "corrupt pages:" in out

    def test_chaos_join_succeeds_and_reports_retries(self, two_trees,
                                                     capsys):
        code, out, _err = run(capsys, "join",
                              "--inject-transient", "0.05",
                              "--fault-seed", "3",
                              "--max-attempts", "10",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert "retried reads:" in out

    def test_retry_exhaustion_is_exit_4(self, two_trees, capsys):
        code, _out, err = run(capsys, "join",
                              "--inject-transient", "1.0",
                              "--max-attempts", "2",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 4
        assert "retries" in err

    def test_lenient_join_reports_what_was_dropped(self, two_trees,
                                                   capsys):
        # End-to-end through the CLI: a corrupt subtree, loaded with
        # --lenient, must (a) exit 0, (b) print the CorruptionReport
        # summary — corrupt/orphaned/lost counts — on stderr, and (c)
        # still produce a usable join result on stdout.
        self.corrupt_leaf(two_trees[0])
        code, out, err = run(capsys, "join", "--lenient",
                             str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert "degraded load" in err
        assert "corrupt page(s)" in err
        assert "object(s) lost" in err
        assert str(two_trees[1]) not in err     # only R1 degraded
        assert "result pairs:" in out
        assert "node accesses NA:" in out

    def test_lenient_query_degrades_with_warning(self, saved_tree,
                                                 capsys):
        self.corrupt_leaf(saved_tree)
        code, out, err = run(capsys, "query", "--lenient",
                             str(saved_tree),
                             "--window", "0", "0", "1", "1")
        assert code == 0
        assert "degraded load" in err
        assert "range query" in out

    def test_lenient_join_finds_fewer_pairs_than_clean(self, tmp_path,
                                                       capsys):
        # The degraded answer is a strict under-approximation: dropping
        # a leaf can only lose pairs, never invent them.
        paths = []
        for seed in (16, 17):
            data = tmp_path / f"d{seed}.txt"
            tree = tmp_path / f"t{seed}.json"
            run(capsys, "generate", "uniform", "-n", "250", "-d", "0.5",
                "--seed", str(seed), "-o", str(data))
            run(capsys, "build", str(data), "-M", "8", "-o", str(tree))
            paths.append(tree)

        def pairs_of(out):
            for line in out.splitlines():
                if line.startswith("result pairs:"):
                    return int(line.split(":")[1])
            raise AssertionError(f"no pair count in {out!r}")

        _, clean_out, _ = run(capsys, "join", str(paths[0]),
                              str(paths[1]))
        self.corrupt_leaf(paths[0])
        code, degraded_out, _err = run(capsys, "join", "--lenient",
                                       str(paths[0]), str(paths[1]))
        assert code == 0
        assert pairs_of(degraded_out) < pairs_of(clean_out)


class TestGovernorCli:
    """Exit code 5: budgets, admission control, partial + resume."""

    @pytest.fixture
    def two_trees(self, tmp_path, capsys):
        paths = []
        for seed in (21, 22):
            data = tmp_path / f"d{seed}.txt"
            tree = tmp_path / f"t{seed}.json"
            run(capsys, "generate", "uniform", "-n", "300", "-d", "0.5",
                "--seed", str(seed), "-o", str(data))
            run(capsys, "build", str(data), "-M", "8", "-o", str(tree))
            paths.append(tree)
        return paths

    @staticmethod
    def reason_of(out):
        import json
        for line in out.splitlines():
            if line.startswith("{"):
                return json.loads(line)
        raise AssertionError(f"no JSON reason in {out!r}")

    def test_budget_exhaustion_is_exit_5_with_json(self, two_trees,
                                                   capsys):
        code, out, err = run(capsys, "join", "--max-na", "5",
                             "--admission", "off",
                             str(two_trees[0]), str(two_trees[1]))
        assert code == 5
        assert "error:" in err
        reason = self.reason_of(out)
        assert reason["error"] == "budget-exceeded"
        assert reason["resource"] == "na"
        assert reason["limit"] == 5

    def test_deadline_is_exit_5(self, two_trees, capsys):
        code, out, _err = run(capsys, "join", "--deadline", "1e-9",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 5
        assert self.reason_of(out)["resource"] == "deadline"

    def test_admission_reject_before_any_read(self, two_trees, capsys):
        code, out, _err = run(capsys, "join", "--max-na", "5",
                              "--admission", "reject",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 5
        assert "result pairs:" not in out    # never started executing
        assert "node accesses" not in out
        reason = self.reason_of(out)
        assert reason["error"] == "admission-rejected"
        assert reason["predicted"] is True

    def test_admission_warn_proceeds(self, two_trees, capsys):
        # Same impossible budget, warn mode: the warning names the
        # predicted overrun but execution starts (and is then stopped
        # by the runtime check, not by admission).
        code, out, err = run(capsys, "join", "--max-na", "5",
                             "--admission", "warn",
                             str(two_trees[0]), str(two_trees[1]))
        assert code == 5
        assert "admission" in err and "proceeding" in err
        assert self.reason_of(out)["error"] == "budget-exceeded"

    def test_partial_then_resume_matches_uninterrupted(self, two_trees,
                                                       tmp_path, capsys):
        def totals(out):
            na = da = None
            for line in out.splitlines():
                if line.startswith("node accesses NA:"):
                    na = line
                if line.startswith("disk accesses DA:"):
                    da = line
            return na, da

        code, full_out, _err = run(capsys, "join", str(two_trees[0]),
                                   str(two_trees[1]))
        assert code == 0

        ckpt = tmp_path / "join.ckpt"
        code, out, _err = run(capsys, "join", "--max-na", "10",
                              "--partial", "--checkpoint", str(ckpt),
                              "--admission", "off",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 5
        assert ckpt.exists()
        assert "partial pairs so far:" in out
        assert "result pairs:" not in out
        assert f"--resume {ckpt}" in out
        assert self.reason_of(out)["resource"] == "na"

        code, resumed_out, _err = run(capsys, "join",
                                      "--resume", str(ckpt),
                                      str(two_trees[0]),
                                      str(two_trees[1]))
        assert code == 0
        assert "result pairs:" in resumed_out
        assert totals(resumed_out) == totals(full_out)

    def test_partial_without_checkpoint_warns(self, two_trees, capsys):
        code, _out, err = run(capsys, "join", "--max-na", "10",
                              "--partial", "--admission", "off",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 5
        assert "not resumable" in err

    def test_resume_against_wrong_tree_is_exit_2(self, two_trees,
                                                 tmp_path, capsys):
        ckpt = tmp_path / "join.ckpt"
        run(capsys, "join", "--max-na", "10", "--partial",
            "--checkpoint", str(ckpt), "--admission", "off",
            str(two_trees[0]), str(two_trees[1]))
        other_data = tmp_path / "d99.txt"
        other_tree = tmp_path / "t99.json"
        run(capsys, "generate", "uniform", "-n", "100", "-d", "0.5",
            "--seed", "99", "-o", str(other_data))
        run(capsys, "build", str(other_data), "-M", "8",
            "-o", str(other_tree))
        code, _out, err = run(capsys, "join", "--resume", str(ckpt),
                              str(other_tree), str(two_trees[1]))
        assert code == 2
        assert "fingerprint" in err

    def test_experiment_budget_is_exit_5(self, capsys):
        code, out, _err = run(capsys, "experiment", "fig5a",
                              "--scale", "smoke", "--max-na", "1")
        assert code == 5
        assert self.reason_of(out)["error"] == "budget-exceeded"
