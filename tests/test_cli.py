"""The command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestGenerateInspect:
    def test_generate_uniform(self, tmp_path, capsys):
        out_file = tmp_path / "u.txt"
        code, out, _err = run(capsys, "generate", "uniform", "-n", "100",
                              "-d", "0.3", "--seed", "1",
                              "-o", str(out_file))
        assert code == 0
        assert out_file.exists()
        assert "N=100" in out

    @pytest.mark.parametrize("kind", ["clustered", "zipf", "diagonal",
                                      "tiger"])
    def test_generate_all_kinds(self, tmp_path, capsys, kind):
        out_file = tmp_path / f"{kind}.txt"
        code, _out, _err = run(capsys, "generate", kind, "-n", "60",
                               "--seed", "2", "-o", str(out_file))
        assert code == 0

    def test_tiger_rejects_1d(self, tmp_path, capsys):
        code, _out, err = run(capsys, "generate", "tiger", "-n", "10",
                              "--ndim", "1",
                              "-o", str(tmp_path / "x.txt"))
        assert code == 2
        assert "two-dimensional" in err

    def test_inspect(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        run(capsys, "generate", "uniform", "-n", "150", "-d", "0.4",
            "--seed", "3", "-o", str(data))
        code, out, _err = run(capsys, "inspect", str(data))
        assert code == 0
        assert "cardinality: 150" in out
        assert "density:     0.4" in out

    def test_inspect_missing_file(self, capsys):
        code, _out, err = run(capsys, "inspect", "/nonexistent/d.txt")
        assert code == 2
        assert "error:" in err


class TestBuildJoinEstimate:
    @pytest.fixture
    def two_trees(self, tmp_path, capsys):
        paths = []
        for seed in (4, 5):
            data = tmp_path / f"d{seed}.txt"
            tree = tmp_path / f"t{seed}.json"
            run(capsys, "generate", "uniform", "-n", "300", "-d", "0.5",
                "--seed", str(seed), "-o", str(data))
            run(capsys, "build", str(data), "-M", "16",
                "-o", str(tree))
            paths.append(tree)
        return paths

    def test_build_reports_structure(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        run(capsys, "generate", "uniform", "-n", "200", "--seed", "6",
            "-o", str(data))
        code, out, _err = run(capsys, "build", str(data), "-M", "16",
                              "--variant", "str",
                              "-o", str(tmp_path / "t.json"))
        assert code == 0
        assert "built str tree" in out and "height" in out

    def test_join(self, two_trees, capsys):
        code, out, _err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]))
        assert code == 0
        assert "result pairs:" in out
        assert "node accesses NA:" in out
        assert "analytical:" in out

    def test_join_buffer_specs(self, two_trees, capsys):
        for spec in ("none", "path", "lru:16"):
            code, _out, _err = run(capsys, "join", str(two_trees[0]),
                                   str(two_trees[1]), "--buffer", spec)
            assert code == 0

    def test_join_bad_buffer(self, two_trees, capsys):
        code, _out, err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]), "--buffer", "magic")
        assert code == 2
        assert "buffer" in err

    def test_estimate(self, capsys):
        code, out, _err = run(capsys, "estimate", "--n1", "20000",
                              "--d1", "0.5", "--n2", "60000",
                              "--d2", "0.5", "-M", "50")
        assert code == 0
        assert "NA_total" in out
        assert "role advice" in out

    def test_figures(self, capsys):
        code, out, _err = run(capsys, "figures")
        assert code == 0
        for label in ("Figure 6a", "Figure 6b", "Figure 7a",
                      "Figure 7b"):
            assert label in out


class TestQueryCommand:
    @pytest.fixture
    def saved_tree(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        tree = tmp_path / "t.json"
        run(capsys, "generate", "uniform", "-n", "200", "-d", "0.5",
            "--seed", "11", "-o", str(data))
        run(capsys, "build", str(data), "-M", "16", "-o", str(tree))
        return tree

    def test_range_query(self, saved_tree, capsys):
        code, out, _err = run(capsys, "query", str(saved_tree),
                              "--window", "0.2", "0.2", "0.5", "0.5")
        assert code == 0
        assert "range query" in out
        assert "node accesses:" in out

    def test_knn_query(self, saved_tree, capsys):
        code, out, _err = run(capsys, "query", str(saved_tree),
                              "--knn", "0.5", "0.5", "-k", "5")
        assert code == 0
        assert out.count("oid ") == 5

    def test_window_arity_checked(self, saved_tree, capsys):
        code, _out, err = run(capsys, "query", str(saved_tree),
                              "--window", "0.2", "0.2", "0.5")
        assert code == 2
        assert "coordinates" in err

    def test_knn_arity_checked(self, saved_tree, capsys):
        code, _out, err = run(capsys, "query", str(saved_tree),
                              "--knn", "0.5")
        assert code == 2
        assert "coordinates" in err


class TestExperimentCommand:
    def test_analytic_experiment(self, capsys):
        code, out, _err = run(capsys, "experiment", "fig6a")
        assert code == 0
        assert "anal(NA)" in out

    def test_unknown_id(self, capsys):
        code, _out, err = run(capsys, "experiment", "fig42")
        assert code == 2
        assert "unknown experiment" in err


class TestReliabilityCli:
    """Structured exit codes, degraded loads, verify, chaos joins."""

    @pytest.fixture
    def saved_tree(self, tmp_path, capsys):
        data = tmp_path / "d.txt"
        tree = tmp_path / "t.json"
        run(capsys, "generate", "uniform", "-n", "250", "-d", "0.5",
            "--seed", "13", "-o", str(data))
        run(capsys, "build", str(data), "-M", "8", "-o", str(tree))
        return tree

    @pytest.fixture
    def two_trees(self, tmp_path, capsys):
        paths = []
        for seed in (14, 15):
            data = tmp_path / f"d{seed}.txt"
            tree = tmp_path / f"t{seed}.json"
            run(capsys, "generate", "uniform", "-n", "250", "-d", "0.5",
                "--seed", str(seed), "-o", str(data))
            run(capsys, "build", str(data), "-M", "8", "-o", str(tree))
            paths.append(tree)
        return paths

    @staticmethod
    def corrupt_leaf(path):
        import json
        doc = json.loads(path.read_text())
        victim = min(int(p) for p, n in doc["nodes"].items()
                     if n["level"] == 1 and int(p) != doc["root_id"])
        payload = doc["nodes"][str(victim)]
        payload["entries"][0][0][0] += 0.125   # CRC left stale
        path.write_text(json.dumps(doc))

    def test_truncated_json_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 2, "ndim"')
        code, _out, err = run(capsys, "query", str(bad),
                              "--window", "0", "0", "1", "1")
        assert code == 2
        assert "invalid JSON" in err

    def test_missing_field_is_usage_error(self, saved_tree, capsys):
        import json
        doc = json.loads(saved_tree.read_text())
        del doc["root_id"]
        saved_tree.write_text(json.dumps(doc))
        code, _out, err = run(capsys, "query", str(saved_tree),
                              "--window", "0", "0", "1", "1")
        assert code == 2
        assert "root_id" in err

    def test_corruption_is_exit_3(self, two_trees, capsys):
        self.corrupt_leaf(two_trees[0])
        code, _out, err = run(capsys, "join", str(two_trees[0]),
                              str(two_trees[1]))
        assert code == 3
        assert "corrupt" in err

    def test_lenient_join_degrades_with_warning(self, two_trees, capsys):
        self.corrupt_leaf(two_trees[0])
        code, out, err = run(capsys, "join", "--lenient",
                             str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert "degraded load" in err
        assert "result pairs:" in out

    def test_verify_clean(self, saved_tree, capsys):
        code, out, _err = run(capsys, "verify", str(saved_tree))
        assert code == 0
        assert "clean" in out

    def test_verify_corrupt(self, saved_tree, capsys):
        self.corrupt_leaf(saved_tree)
        code, out, _err = run(capsys, "verify", str(saved_tree))
        assert code == 3
        assert "CORRUPT" in out
        assert "corrupt pages:" in out

    def test_chaos_join_succeeds_and_reports_retries(self, two_trees,
                                                     capsys):
        code, out, _err = run(capsys, "join",
                              "--inject-transient", "0.05",
                              "--fault-seed", "3",
                              "--max-attempts", "10",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 0
        assert "retried reads:" in out

    def test_retry_exhaustion_is_exit_4(self, two_trees, capsys):
        code, _out, err = run(capsys, "join",
                              "--inject-transient", "1.0",
                              "--max-attempts", "2",
                              str(two_trees[0]), str(two_trees[1]))
        assert code == 4
        assert "retries" in err
