"""Batch estimation: grids through `estimate_batch`, both backends."""

import json

import pytest

from repro.costmodel import AnalyticalTreeParams
from repro.costmodel.join_da import join_da_breakdown
from repro.costmodel.join_na import join_na_breakdown
from repro.costmodel.range_query import range_query_na
from repro.costmodel.selectivity import join_selectivity_pairs
from repro.estimator import (EstimateRequest, ParamCache, estimate_batch,
                             have_numpy, range_na_batch)
from repro.reliability import ModelDomainError

BACKENDS = ["python"] + (["numpy"] if have_numpy() else [])


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Run a test under each available backend."""
    if request.param == "python":
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
    else:
        monkeypatch.delenv("REPRO_PURE_PYTHON", raising=False)
    return request.param


def _grid() -> list[EstimateRequest]:
    reqs = []
    for i, (n1, n2) in enumerate([(1, 1), (40, 70_000), (20_000, 20_000),
                                  (80_000, 5_000), (123_456, 7)]):
        reqs.append(EstimateRequest(
            n1=n1, d1=0.1 * (i + 1), n2=n2, d2=1.3 - 0.2 * i,
            max_entries=21 + i, ndim=1 + i % 3,
            fill=(0.5, 0.67, 1.0)[i % 3],
            max_entries_right=None if i % 2 else 64,
            distance=0.02 * i,
            window=None if i % 2 else (0.1,) * (1 + i % 3)))
    return reqs


def test_batch_matches_scalar_reference(backend):
    reqs = _grid()
    res = estimate_batch(reqs, mixed_height_mode="paper")
    assert res.backend == backend
    assert res.mixed_height_mode == "paper"
    assert len(res) == len(reqs)
    for i, r in enumerate(reqs):
        p1 = AnalyticalTreeParams(r.n1, r.d1, r.m_left, r.ndim,
                                  r.fill_left)
        p2 = AnalyticalTreeParams(r.n2, r.d2, r.m_right, r.ndim,
                                  r.fill_right_)
        assert res.height1[i] == p1.height
        assert res.height2[i] == p2.height
        assert res.na[i] == sum(
            c.total for c in join_na_breakdown(p1, p2))
        da = join_da_breakdown(p1, p2, "paper")
        assert res.da[i] == sum(c.total for c in da)
        assert res.da_left[i] == sum(c.cost1 for c in da)
        assert res.da_right[i] == sum(c.cost2 for c in da)
        assert res.da_swapped[i] == sum(
            c.total for c in join_da_breakdown(p2, p1, "paper"))
        assert res.selectivity[i] == join_selectivity_pairs(
            p1, p2, distance=r.distance)
        w = r.window_tuple()
        if w is None:
            assert res.range_na[i] is None
        else:
            assert res.range_na[i] == range_query_na(p1, w)


@pytest.mark.skipif(not have_numpy(), reason="NumPy unavailable")
def test_backends_bit_identical(monkeypatch):
    reqs = _grid()
    fast = estimate_batch(reqs)
    monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
    slow = estimate_batch(reqs)
    assert fast.backend == "numpy" and slow.backend == "python"
    for field in ("na", "da", "da_left", "da_right", "da_swapped",
                  "selectivity", "range_na", "height1", "height2"):
        assert getattr(fast, field) == getattr(slow, field)


def test_accepts_dict_requests(backend):
    res = estimate_batch([
        {"n1": 1000, "d1": 0.5, "n2": 2000, "d2": 0.4},
        {"n1": 500, "d1": 0.2, "n2": 500, "d2": 0.2,
         "window": [0.1, 0.1], "label": "windowed"},
    ])
    assert len(res) == 2
    assert res.requests[1].label == "windowed"
    assert res.range_na[0] is None and res.range_na[1] is not None


def test_records_are_json_safe(backend):
    res = estimate_batch(_grid())
    records = res.as_records()
    text = json.dumps(records)
    parsed = json.loads(text)
    assert len(parsed) == len(res)
    assert parsed[0]["na"] == res.na[0]
    assert "range_na" in parsed[0] and "range_na" not in parsed[1]


def test_empty_batch(backend):
    res = estimate_batch([])
    assert len(res) == 0
    assert res.as_records() == []


@pytest.mark.parametrize("record, match", [
    ({"n1": 0, "d1": 0.5, "n2": 10, "d2": 0.5}, "N >= 1"),
    ({"n1": 10, "d1": -1.0, "n2": 10, "d2": 0.5}, "d1"),
    ({"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5, "ndim": 0}, "ndim"),
    ({"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5, "max_entries": 1},
     "max_entries"),
    ({"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5, "fill": 0.0}, "fill"),
    ({"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5, "fill": 0.01},
     "c\\*M"),
    ({"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5, "distance": -1.0},
     "distance"),
    ({"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5, "window": [0.1]},
     "window"),
])
def test_validation_names_the_row(backend, record, match):
    good = {"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5}
    with pytest.raises(ModelDomainError, match=match) as exc:
        estimate_batch([good, record])
    assert "request 1" in str(exc.value)


def test_bad_mode_and_bad_fields(backend):
    good = {"n1": 10, "d1": 0.5, "n2": 10, "d2": 0.5}
    with pytest.raises(ValueError, match="mixed_height_mode"):
        estimate_batch([good], mixed_height_mode="bogus")
    with pytest.raises(ValueError, match="unknown request field"):
        estimate_batch([{**good, "cardinality": 9}])
    with pytest.raises(ValueError, match="missing required field"):
        estimate_batch([{"n1": 10, "d1": 0.5}])


def test_range_na_batch(backend):
    trees = [AnalyticalTreeParams(10_000, 0.5, 50, 2),
             AnalyticalTreeParams(60_000, 0.2, 24, 2),
             (3000, 0.7, 16, 2, 0.67)]
    windows = [(0.1, 0.1), (0.05, 0.2), (0.3, 0.3)]
    got = range_na_batch(trees, windows)
    assert got[0] == range_query_na(trees[0], windows[0])
    assert got[1] == range_query_na(trees[1], windows[1])
    assert got[2] == range_query_na(
        AnalyticalTreeParams(3000, 0.7, 16, 2, 0.67), windows[2])
    with pytest.raises(ValueError, match="equal length"):
        range_na_batch(trees, windows[:2])


def test_param_cache_dedup():
    cache = ParamCache(maxsize=2)
    a = cache.get(1000, 0.5, 50, 2)
    assert cache.get(1000, 0.5, 50, 2) is a
    assert (cache.hits, cache.misses) == (1, 1)
    cache.get(2000, 0.5, 50, 2)
    cache.get(3000, 0.5, 50, 2)          # evicts the LRU entry
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0
