"""Columnar MBR views and the vectorized pair enumerators.

The contract under test is the one ``docs/performance.md`` documents:
``pair_enumeration="vectorized"`` must produce the *identical* pair
list, NA, and DA as the paper's nested loops — the batching is a pure
CPU optimisation, invisible to the I/O model — on the NumPy backend and
the pure-Python fallback alike.
"""

import pickle

import pytest

from repro.estimator.backend import have_numpy
from repro.exec import Budget, ExecutionGovernor
from repro.geometry import (ColumnarMBRs, Rect, distance_candidate_pairs,
                            overlap_pairs)
from repro.join import (OVERLAP, SpatialJoin, WithinDistance, naive_join,
                        spatial_join, vectorized_pairs)
from repro.join.predicates import JoinPredicate
from repro.rtree import Entry, Node
from repro.storage import PathBuffer

from .conftest import build_rstar, make_items


def node_of(rects, page_id=0, level=1):
    return Node(page_id, level,
                [Entry(r, i) for i, r in enumerate(rects)])


class TestColumnarMBRs:
    def test_from_rects_round_trips_coordinates(self):
        rects = [r for r, _o in make_items(25, seed=1)]
        cols = ColumnarMBRs.from_rects(rects)
        assert len(cols) == 25
        assert cols.ndim == 2
        for k in range(2):
            assert list(cols.lo_col(k)) == [r.lo[k] for r in rects]
            assert list(cols.hi_col(k)) == [r.hi[k] for r in rects]

    def test_backend_reporting(self, monkeypatch):
        rects = [Rect((0.0, 0.0), (1.0, 1.0))]
        cols = ColumnarMBRs.from_rects(rects)
        expected = "numpy" if have_numpy() else "python"
        assert cols.backend == expected
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        assert ColumnarMBRs.from_rects(rects).backend == "python"

    def test_current_tracks_backend_switch(self, monkeypatch):
        if not have_numpy():
            pytest.skip("needs the numpy backend to flip away from")
        cols = ColumnarMBRs.from_rects([Rect((0.0, 0.0), (1.0, 1.0))])
        assert cols.current()
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        assert not cols.current()

    def test_empty(self):
        with pytest.raises(ValueError):
            ColumnarMBRs.from_rects([])


class TestOverlapPairs:
    def brute(self, r1, r2):
        return [(i, j) for j, b in enumerate(r2)
                for i, a in enumerate(r1) if a.intersects(b)]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_brute_force_in_j_major_order(self, seed):
        r1 = [r for r, _o in make_items(40, seed=seed)]
        r2 = [r for r, _o in make_items(35, seed=seed + 50)]
        got = overlap_pairs(ColumnarMBRs.from_rects(r1),
                            ColumnarMBRs.from_rects(r2))
        assert got == self.brute(r1, r2)

    def test_touching_edges_count_as_overlap(self):
        # Closed boxes: sharing a boundary is an intersection, exactly
        # like Rect.intersects.
        r1 = [Rect((0.0, 0.0), (0.5, 0.5))]
        r2 = [Rect((0.5, 0.0), (1.0, 0.5)),   # shares the x=0.5 edge
              Rect((0.5, 0.5), (1.0, 1.0))]   # shares only the corner
        assert overlap_pairs(ColumnarMBRs.from_rects(r1),
                             ColumnarMBRs.from_rects(r2)) \
            == [(0, 0), (0, 1)]

    def test_degenerate_rectangles(self):
        point = Rect((0.3, 0.3), (0.3, 0.3))
        box = Rect((0.0, 0.0), (1.0, 1.0))
        away = Rect((0.5, 0.5), (0.9, 0.9))
        got = overlap_pairs(ColumnarMBRs.from_rects([point]),
                            ColumnarMBRs.from_rects([box, away]))
        assert got == [(0, 0)]

    def test_pure_python_identical(self, monkeypatch):
        r1 = [r for r, _o in make_items(30, seed=4)]
        r2 = [r for r, _o in make_items(30, seed=5)]
        with_np = overlap_pairs(ColumnarMBRs.from_rects(r1),
                                ColumnarMBRs.from_rects(r2))
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        without = overlap_pairs(ColumnarMBRs.from_rects(r1),
                                ColumnarMBRs.from_rects(r2))
        assert with_np == without


class TestDistanceCandidatePairs:
    def test_superset_of_true_within_distance(self):
        r1 = [r for r, _o in make_items(40, seed=6)]
        r2 = [r for r, _o in make_items(40, seed=7)]
        d = 0.05
        cand = set(distance_candidate_pairs(
            ColumnarMBRs.from_rects(r1), ColumnarMBRs.from_rects(r2), d))
        truly = {(i, j) for i, a in enumerate(r1)
                 for j, b in enumerate(r2) if a.min_distance(b) <= d}
        assert truly <= cand

    def test_prunes_far_pairs(self):
        r1 = [Rect((0.0, 0.0), (0.1, 0.1))]
        r2 = [Rect((0.9, 0.9), (1.0, 1.0))]
        assert distance_candidate_pairs(
            ColumnarMBRs.from_rects(r1), ColumnarMBRs.from_rects(r2),
            0.1) == []


class TestNodeColumnsCache:
    def test_cache_reused_until_mutation(self):
        node = node_of([r for r, _o in make_items(10, seed=8)])
        first = node.columns()
        assert node.columns() is first

    @pytest.mark.parametrize("mutate", [
        lambda n: n.entries.append(Entry(Rect((0, 0), (1, 1)), 99)),
        lambda n: n.entries.pop(),
        lambda n: n.entries.__delitem__(0),
        lambda n: n.replace_entry(0, Entry(Rect((0, 0), (1, 1)), 99)),
        lambda n: n.entries.__setitem__(
            slice(None), [Entry(Rect((0, 0), (1, 1)), 99)]),
        lambda n: setattr(n, "entries",
                          [Entry(Rect((0, 0), (1, 1)), 99)]),
    ])
    def test_every_mutation_invalidates(self, mutate):
        node = node_of([r for r, _o in make_items(10, seed=9)])
        stale = node.columns()
        mutate(node)
        fresh = node.columns()
        assert fresh is not stale
        assert len(fresh) == len(node.entries)
        assert list(fresh.lo_col(0)) == \
            [e.rect.lo[0] for e in node.entries]

    def test_backend_flip_invalidates(self, monkeypatch):
        if not have_numpy():
            pytest.skip("needs the numpy backend to flip away from")
        node = node_of([r for r, _o in make_items(5, seed=10)])
        assert node.columns().backend == "numpy"
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        assert node.columns().backend == "python"

    def test_pickle_round_trip_drops_cache(self):
        node = node_of([r for r, _o in make_items(8, seed=11)],
                       page_id=3, level=2)
        node.columns()
        clone = pickle.loads(pickle.dumps(node))
        assert clone.page_id == 3 and clone.level == 2
        assert [e.ref for e in clone.entries] == \
            [e.ref for e in node.entries]
        assert clone._columns is None
        assert len(clone.columns()) == len(node.entries)


class _NoKernel(JoinPredicate):
    """Overlap without a batched kernel: exercises the fallback path."""

    def node_test(self, r1, r2):
        return r1.intersects(r2)

    leaf_test = node_test


class TestVectorizedPairs:
    def reference(self, n1, n2, predicate, leaf):
        test = predicate.leaf_test if leaf else predicate.node_test
        return [(a.ref, b.ref) for b in n2.entries for a in n1.entries
                if test(a.rect, b.rect)]

    @pytest.mark.parametrize("predicate", [
        OVERLAP, WithinDistance(0.05), WithinDistance(0.0), _NoKernel()])
    @pytest.mark.parametrize("leaf", [True, False])
    def test_same_pairs_as_nested_loop(self, predicate, leaf):
        n1 = node_of([r for r, _o in make_items(30, seed=12)])
        n2 = node_of([r for r, _o in make_items(25, seed=13)], page_id=1)
        got = [(a.ref, b.ref) for a, b, _c
               in vectorized_pairs(n1, n2, predicate, leaf)]
        assert got == self.reference(n1, n2, predicate, leaf)

    def test_block_cost_charged_once(self):
        n1 = node_of([r for r, _o in make_items(12, seed=14, side=0.3)])
        n2 = node_of([r for r, _o in make_items(9, seed=15, side=0.3)],
                     page_id=1)
        costs = [c for _a, _b, c
                 in vectorized_pairs(n1, n2, OVERLAP, True)]
        assert costs, "fixture produced no overlapping pairs"
        assert costs[0] == 12 * 9
        assert all(c == 0 for c in costs[1:])

    def test_no_qualifying_pairs_costs_nothing(self):
        n1 = node_of([Rect((0.0, 0.0), (0.1, 0.1))])
        n2 = node_of([Rect((0.8, 0.8), (0.9, 0.9))], page_id=1)
        assert list(vectorized_pairs(n1, n2, OVERLAP, True)) == []

    def test_empty_side_yields_nothing(self):
        full = node_of([Rect((0.0, 0.0), (1.0, 1.0))])
        empty = Node(1, 1, [])
        assert list(vectorized_pairs(full, empty, OVERLAP, True)) == []
        assert list(vectorized_pairs(empty, full, OVERLAP, True)) == []


class TestVectorizedJoinIdentity:
    """End-to-end: identical pairs, NA and DA, per-tree and per-level."""

    @pytest.mark.parametrize("predicate", [OVERLAP, WithinDistance(0.04)])
    def test_bit_identical_to_nested_loop(self, predicate):
        t1 = build_rstar(make_items(300, seed=16))
        t2 = build_rstar(make_items(280, seed=17))
        nl = spatial_join(t1, t2, predicate=predicate,
                          pair_enumeration="nested-loop")
        vec = spatial_join(t1, t2, predicate=predicate,
                           pair_enumeration="vectorized")
        assert vec.pairs == nl.pairs            # list order included
        got, want = vec.stats.as_dict(), nl.stats.as_dict()
        assert got["node_accesses"] == want["node_accesses"]
        assert got["disk_accesses"] == want["disk_accesses"]

    def test_matches_naive_reference(self):
        a = make_items(200, seed=18)
        b = make_items(200, seed=19)
        t1, t2 = build_rstar(a), build_rstar(b)
        vec = spatial_join(t1, t2, pair_enumeration="vectorized")
        assert sorted(vec.pairs) == sorted(naive_join(a, b))

    def test_mixed_heights(self):
        small = make_items(25, seed=20)
        large = make_items(400, seed=21)
        for items1, items2 in ((small, large), (large, small)):
            t1, t2 = build_rstar(items1), build_rstar(items2)
            assert t1.height != t2.height
            nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
            vec = spatial_join(t1, t2, pair_enumeration="vectorized")
            assert vec.pairs == nl.pairs
            assert vec.stats.as_dict()["node_accesses"] == \
                nl.stats.as_dict()["node_accesses"]

    def test_height_one_trees(self):
        t1 = build_rstar(make_items(5, seed=22))
        t2 = build_rstar(make_items(5, seed=23))
        assert t1.height == t2.height == 1
        nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
        vec = spatial_join(t1, t2, pair_enumeration="vectorized")
        assert vec.pairs == nl.pairs

    def test_empty_tree(self):
        from repro.rtree import RStarTree
        empty = RStarTree(2, 8)
        other = build_rstar(make_items(40, seed=24))
        assert spatial_join(
            empty, other, pair_enumeration="vectorized").pairs == []

    def test_pure_python_backend_identical(self, monkeypatch):
        t1 = build_rstar(make_items(200, seed=25))
        t2 = build_rstar(make_items(200, seed=26))
        with_np = spatial_join(t1, t2, pair_enumeration="vectorized")
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        # Fresh trees: the cached columns of the old ones are rebuilt
        # anyway (current() sees the flip), but build anew to also
        # exercise from_rects on the fallback arrays.
        t1b = build_rstar(make_items(200, seed=25))
        t2b = build_rstar(make_items(200, seed=26))
        without = spatial_join(t1b, t2b, pair_enumeration="vectorized")
        assert without.pairs == with_np.pairs
        assert without.stats.as_dict() == with_np.stats.as_dict()


class TestVectorizedCheckpointResume:
    def test_resume_completes_bit_identically(self):
        t1 = build_rstar(make_items(300, seed=27))
        t2 = build_rstar(make_items(300, seed=28))
        full = SpatialJoin(t1, t2, PathBuffer(),
                           pair_enumeration="vectorized").run()

        gov = ExecutionGovernor(Budget(max_na=25), partial=True)
        partial = SpatialJoin(t1, t2, PathBuffer(),
                              pair_enumeration="vectorized",
                              governor=gov).run()
        assert not partial.complete
        resumed = SpatialJoin(
            t1, t2, PathBuffer(),
            pair_enumeration="vectorized").resume(partial.checkpoint)
        assert resumed.complete
        assert resumed.pairs == full.pairs
        assert resumed.na_total == full.na_total
        assert resumed.da_total == full.da_total

    def test_checkpoint_enumeration_mismatch_refused(self):
        from repro.exec import CheckpointMismatch
        t1 = build_rstar(make_items(150, seed=29))
        t2 = build_rstar(make_items(150, seed=30))
        gov = ExecutionGovernor(Budget(max_na=20), partial=True)
        partial = SpatialJoin(t1, t2, PathBuffer(),
                              pair_enumeration="vectorized",
                              governor=gov).run()
        assert not partial.complete
        with pytest.raises(CheckpointMismatch):
            SpatialJoin(t1, t2, PathBuffer(),
                        pair_enumeration="nested-loop",
                        ).resume(partial.checkpoint)
