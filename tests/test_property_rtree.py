"""Property-based tests: R-tree invariants under random workloads."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.join import naive_join, spatial_join
from repro.rtree import GuttmanRTree, RStarTree, hilbert_pack, str_pack, \
    validate

SLOW = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


def rect_strategy():
    coord = st.floats(min_value=0.0, max_value=0.95, allow_nan=False)
    size = st.floats(min_value=0.0, max_value=0.05, allow_nan=False)

    def build(args):
        (x, y), (w, h) = args
        return Rect((x, y), (min(x + w, 1.0), min(y + h, 1.0)))
    return st.tuples(st.tuples(coord, coord),
                     st.tuples(size, size)).map(build)


items_strategy = st.lists(rect_strategy(), min_size=0, max_size=120).map(
    lambda rs: [(r, i) for i, r in enumerate(rs)])


@SLOW
@given(items_strategy, st.sampled_from([4, 8, 16]))
def test_rstar_insert_keeps_invariants(items, m):
    tree = RStarTree(2, m)
    for rect, oid in items:
        tree.insert(rect, oid)
    assert validate(tree) == []


@SLOW
@given(items_strategy)
def test_guttman_insert_keeps_invariants(items):
    tree = GuttmanRTree(2, 6)
    for rect, oid in items:
        tree.insert(rect, oid)
    assert validate(tree) == []


@SLOW
@given(items_strategy, rect_strategy())
def test_range_query_equals_brute_force(items, window):
    tree = RStarTree(2, 8)
    for rect, oid in items:
        tree.insert(rect, oid)
    got = sorted(tree.range_query(window))
    want = sorted(oid for rect, oid in items if rect.intersects(window))
    assert got == want


@SLOW
@given(items_strategy, st.data())
def test_delete_subset_preserves_rest(items, data):
    tree = RStarTree(2, 6)
    for rect, oid in items:
        tree.insert(rect, oid)
    if items:
        count = data.draw(st.integers(0, len(items)))
        victims = items[:count]
    else:
        victims = []
    for rect, oid in victims:
        assert tree.delete(rect, oid)
    assert validate(tree) == []
    survivors = sorted(oid for _r, oid in items[len(victims):])
    assert sorted(tree.range_query(Rect((0, 0), (1, 1)))) == survivors


@SLOW
@given(items_strategy)
def test_packed_trees_valid_and_complete(items):
    for pack in (str_pack, hilbert_pack):
        tree = pack(items, 2, 8)
        assert validate(tree) == []
        assert sorted(tree.range_query(Rect((0, 0), (1, 1)))) == \
            sorted(oid for _r, oid in items)


@SLOW
@given(items_strategy, items_strategy)
def test_spatial_join_equals_naive(items1, items2):
    t1 = RStarTree(2, 8)
    for rect, oid in items1:
        t1.insert(rect, oid)
    t2 = RStarTree(2, 8)
    for rect, oid in items2:
        t2.insert(rect, oid)
    result = spatial_join(t1, t2)
    assert sorted(result.pairs) == sorted(naive_join(items1, items2))
    assert result.da_total <= result.na_total
