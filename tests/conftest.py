"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry import Rect
from repro.rtree import GuttmanRTree, RStarTree


def make_items(n: int, ndim: int = 2, seed: int = 0,
               side: float = 0.02) -> list[tuple[Rect, int]]:
    """Random square rectangles fully inside the unit workspace."""
    rng = random.Random(seed)
    items = []
    for oid in range(n):
        lo = [rng.uniform(0.0, 1.0 - side) for _ in range(ndim)]
        items.append((Rect(lo, [a + side for a in lo]), oid))
    return items


def build_rstar(items, ndim: int = 2, max_entries: int = 8) -> RStarTree:
    tree = RStarTree(ndim, max_entries)
    for rect, oid in items:
        tree.insert(rect, oid)
    return tree


def build_guttman(items, ndim: int = 2, max_entries: int = 8,
                  split: str = "quadratic") -> GuttmanRTree:
    tree = GuttmanRTree(ndim, max_entries, split=split)
    for rect, oid in items:
        tree.insert(rect, oid)
    return tree


@pytest.fixture
def items_200():
    return make_items(200, ndim=2, seed=7)


@pytest.fixture
def rstar_200(items_200):
    return build_rstar(items_200)
