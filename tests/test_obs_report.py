"""``repro report`` over a committed fixture trace, and trace loading."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (AccuracyLedger, TRACE_SCHEMA_VERSION, load_trace,
                       render_report)

FIXTURE = str(Path(__file__).resolve().parent / "fixtures"
              / "trace_small.jsonl")


class TestLoadTrace:
    def test_loads_fixture_in_order(self):
        records = load_trace(FIXTURE)
        assert [r["seq"] for r in records] == list(range(1, 12))
        assert all(r["schema"] == TRACE_SCHEMA_VERSION for r in records)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert len(load_trace(str(path))) == 2

    def test_malformed_line_names_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            load_trace(str(path))

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2]\n')
        with pytest.raises(ValueError, match="objects"):
            load_trace(str(path))

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"schema": %d, "event": "a"}\n'
            % (TRACE_SCHEMA_VERSION + 1))
        with pytest.raises(ValueError, match="newer"):
            load_trace(str(path))


class TestRenderReport:
    def test_fixture_report_sections(self):
        text = render_report(load_trace(FIXTURE))
        assert "trace: 11 records" in text
        assert "node_pair" in text
        assert "j1" in text and "partial" in text
        assert "j2" in text and "complete" in text
        assert "join.na" in text                 # metrics snapshot
        assert "estimator accuracy" in text
        assert "budget trips" in text

    def test_ledger_rebuilt_from_trace_matches_events(self):
        records = load_trace(FIXTURE)
        ledger = AccuracyLedger()
        assert ledger.extend_from_trace(records) == 1
        [rec] = ledger.records
        [event] = [r for r in records if r.get("event") == "accuracy"]
        assert rec.na_observed == event["na_observed"]
        assert rec.da_error == event["da_error"]

    def test_empty_trace_renders(self):
        assert "trace: 0 records" in render_report([])


class TestCliReport:
    def test_report_subcommand_on_fixture(self, capsys):
        assert main(["report", FIXTURE]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "estimator accuracy" in out

    def test_report_missing_file_is_usage_error(self, capsys):
        assert main(["report", "/nonexistent/trace.jsonl"]) == 2

    def test_report_malformed_file_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("nope\n")
        assert main(["report", str(path)]) == 2
        assert "malformed" in capsys.readouterr().err
