"""``repro report`` over a committed fixture trace, and trace loading."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import (AccuracyLedger, TRACE_SCHEMA_VERSION, load_trace,
                       render_report)

FIXTURE = str(Path(__file__).resolve().parent / "fixtures"
              / "trace_small.jsonl")


class TestLoadTrace:
    def test_loads_fixture_in_order(self):
        records = load_trace(FIXTURE)
        assert [r["seq"] for r in records] == list(range(1, 12))
        assert all(r["schema"] == TRACE_SCHEMA_VERSION for r in records)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\n\n{"event": "b"}\n')
        assert len(load_trace(str(path))) == 2

    def test_malformed_line_names_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "a"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2:"):
            load_trace(str(path))

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2]\n')
        with pytest.raises(ValueError, match="objects"):
            load_trace(str(path))

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"schema": %d, "event": "a"}\n'
            % (TRACE_SCHEMA_VERSION + 1))
        with pytest.raises(ValueError, match="newer"):
            load_trace(str(path))


class TestRenderReport:
    def test_fixture_report_sections(self):
        text = render_report(load_trace(FIXTURE))
        assert "trace: 11 records" in text
        assert "node_pair" in text
        assert "j1" in text and "partial" in text
        assert "j2" in text and "complete" in text
        assert "join.na" in text                 # metrics snapshot
        assert "estimator accuracy" in text
        assert "budget trips" in text

    def test_ledger_rebuilt_from_trace_matches_events(self):
        records = load_trace(FIXTURE)
        ledger = AccuracyLedger()
        assert ledger.extend_from_trace(records) == 1
        [rec] = ledger.records
        [event] = [r for r in records if r.get("event") == "accuracy"]
        assert rec.na_observed == event["na_observed"]
        assert rec.da_error == event["da_error"]

    def test_empty_trace_renders(self):
        assert "trace: 0 records" in render_report([])

    def test_join_duration_from_monotonic_elapsed(self):
        records = [
            {"event": "join_start", "join": "j1", "ts": 1000.0,
             "elapsed": 1.0},
            # Wall clock stepped back mid-join; elapsed kept going.
            {"event": "join_finish", "join": "j1", "ts": 400.0,
             "elapsed": 3.5, "na": 1, "da": 1, "pairs": 0},
        ]
        report = render_report(records)
        assert "2.500s" in report
        assert "-" not in report.split("joins:")[1].splitlines()[1]

    def test_join_duration_never_negative(self):
        # A defensive clamp: even a nonsensical trace (finish elapsed
        # before start) must not render a negative duration.
        records = [
            {"event": "join_start", "join": "j1", "elapsed": 9.0},
            {"event": "join_finish", "join": "j1", "elapsed": 2.0,
             "na": 0, "da": 0, "pairs": 0},
        ]
        assert "0.000s" in render_report(records)

    def test_join_duration_omitted_for_old_traces(self):
        # Pre-elapsed traces simply render without a duration column.
        records = [
            {"event": "join_start", "join": "j1", "ts": 1.0},
            {"event": "join_finish", "join": "j1", "ts": 2.0,
             "na": 5, "da": 2, "pairs": 1},
        ]
        report = render_report(records)
        join_line = next(l for l in report.splitlines() if "NA=5" in l)
        assert join_line.rstrip().endswith("complete")

    def test_resumed_join_duration_uses_resume_record(self):
        records = [
            {"event": "resume", "join": "j2", "elapsed": 10.0},
            {"event": "join_finish", "join": "j2", "elapsed": 10.75,
             "na": 3, "da": 1, "pairs": 0},
        ]
        assert "0.750s" in render_report(records)


class TestCliReport:
    def test_report_subcommand_on_fixture(self, capsys):
        assert main(["report", FIXTURE]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "estimator accuracy" in out

    def test_report_missing_file_is_usage_error(self, capsys):
        assert main(["report", "/nonexistent/trace.jsonl"]) == 2

    def test_report_malformed_file_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("nope\n")
        assert main(["report", str(path)]) == 2
        assert "malformed" in capsys.readouterr().err
