"""Torn-checkpoint safety: a deadline mid-write can never corrupt resume.

The scenario under test is the race the issue calls out: a ``Budget``
deadline (or crash, or cancellation) trips *while* a checkpoint is being
written.  Two independent defenses must both hold:

* **Atomicity** — :meth:`JoinCheckpoint.save` stages the document in a
  temporary file and renames it into place, so an interrupted save
  leaves the previous good checkpoint untouched.
* **CRC rejection** — if a torn file does reach the checkpoint path
  (simulated here by truncating or flipping bytes at arbitrary
  offsets), :meth:`JoinCheckpoint.load` raises ``CorruptPageError`` or
  ``MalformedFileError`` instead of returning garbage, and resuming
  from the previous good checkpoint still reproduces the uninterrupted
  run bit for bit.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import Budget, ExecutionGovernor, JoinCheckpoint
from repro.join import PartialJoinResult, SpatialJoin
from repro.reliability import CorruptPageError, MalformedFileError
from repro.storage import PathBuffer

from .conftest import build_rstar, make_items

TORN = settings(max_examples=60,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


def _signature(result):
    return {
        "pairs": sorted(result.pairs) if result.pairs is not None else None,
        "pair_count": result.pair_count,
        "comparisons": result.comparisons,
        "na": dict(result.stats.node_accesses),
        "da": dict(result.stats.disk_accesses),
    }


def _join(t1, t2, *, governor=None):
    return SpatialJoin(t1, t2, PathBuffer(), governor=governor)


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(250, seed=61), max_entries=8)
    t2 = build_rstar(make_items(220, seed=62), max_entries=8)
    return t1, t2


@pytest.fixture(scope="module")
def baseline(trees):
    t1, t2 = trees
    return _signature(_join(t1, t2).run())


@pytest.fixture(scope="module")
def good_checkpoint(trees):
    """A partial run's checkpoint plus its serialized byte image."""
    t1, t2 = trees
    gov = ExecutionGovernor(Budget(max_na=9), partial=True)
    first = _join(t1, t2, governor=gov).run()
    assert isinstance(first, PartialJoinResult)
    from repro.exec.checkpoint import _doc_crc

    cp = first.checkpoint
    doc = cp.to_dict()
    doc["crc"] = _doc_crc(doc)
    return cp, json.dumps(doc).encode("utf-8")


class TestTornBytesNeverLoad:
    """Every torn/corrupt byte image is rejected — never parsed as state."""

    @TORN
    @given(cut=st.integers(min_value=0, max_value=10_000))
    def test_truncation_at_any_offset(self, tmp_path_factory,
                                      good_checkpoint, cut):
        cp, raw = good_checkpoint
        cut = min(cut, len(raw) - 1)       # strictly shorter than full doc
        path = tmp_path_factory.mktemp("torn") / "cp.json"
        path.write_bytes(raw[:cut])
        with pytest.raises((CorruptPageError, MalformedFileError)):
            JoinCheckpoint.load(path)

    @TORN
    @given(offset=st.integers(min_value=0, max_value=10_000),
           flip=st.integers(min_value=1, max_value=255))
    def test_bitflip_at_any_offset(self, tmp_path_factory,
                                   good_checkpoint, offset, flip):
        cp, raw = good_checkpoint
        offset = offset % len(raw)
        torn = bytearray(raw)
        torn[offset] ^= flip
        path = tmp_path_factory.mktemp("flip") / "cp.json"
        path.write_bytes(bytes(torn))
        try:
            loaded = JoinCheckpoint.load(path)
        except (CorruptPageError, MalformedFileError):
            return
        # A flip inside a JSON string payload can survive the CRC only
        # if it produced the byte-identical canonical document — i.e.
        # it was not actually a corruption of the state.
        assert loaded.to_dict() == cp.to_dict()

    def test_torn_then_fallback_resumes_bit_identical(
            self, tmp_path, trees, baseline, good_checkpoint):
        # The operational recovery path: newest checkpoint is torn, the
        # previous good one is intact; resuming from it must equal the
        # uninterrupted run exactly.
        t1, t2 = trees
        cp, raw = good_checkpoint
        good = tmp_path / "cp.1.json"
        torn = tmp_path / "cp.2.json"
        cp.save(good)
        torn.write_bytes(raw[: len(raw) // 2])
        with pytest.raises((CorruptPageError, MalformedFileError)):
            JoinCheckpoint.load(torn)
        final = _join(t1, t2).resume(JoinCheckpoint.load(good))
        assert final.complete
        assert _signature(final) == baseline


class TestAtomicSave:
    """save() never tears an existing checkpoint, even when interrupted."""

    def test_save_round_trips(self, tmp_path, good_checkpoint):
        cp, _ = good_checkpoint
        path = tmp_path / "cp.json"
        cp.save(path)
        assert JoinCheckpoint.load(path).to_dict() == cp.to_dict()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_interrupted_save_preserves_previous_good(
            self, tmp_path, trees, baseline, good_checkpoint,
            monkeypatch):
        # Simulate the deadline tripping during the write of a *newer*
        # checkpoint: the staged temp file is abandoned mid-write and
        # the rename never happens.  The previous good checkpoint must
        # still load and resume to the exact uninterrupted result.
        t1, t2 = trees
        cp, _ = good_checkpoint
        path = tmp_path / "cp.json"
        cp.save(path)

        gov = ExecutionGovernor(Budget(max_na=20), partial=True)
        later = _join(t1, t2, governor=gov).run()
        assert isinstance(later, PartialJoinResult)

        import repro.exec.checkpoint as cpmod

        def exploding_replace(src, dst):
            raise TimeoutError("deadline exceeded during checkpoint write")

        monkeypatch.setattr(cpmod.os, "replace", exploding_replace)
        with pytest.raises(TimeoutError):
            later.checkpoint.save(path)
        monkeypatch.undo()

        assert list(tmp_path.glob("*.tmp")) == []
        loaded = JoinCheckpoint.load(path)
        assert loaded.to_dict() == cp.to_dict()
        final = _join(t1, t2).resume(loaded)
        assert final.complete
        assert _signature(final) == baseline

    def test_interrupted_first_save_leaves_no_file(
            self, tmp_path, good_checkpoint, monkeypatch):
        cp, _ = good_checkpoint
        path = tmp_path / "cp.json"
        import repro.exec.checkpoint as cpmod
        monkeypatch.setattr(
            cpmod.os, "replace",
            lambda src, dst: (_ for _ in ()).throw(TimeoutError()))
        with pytest.raises(TimeoutError):
            cp.save(path)
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    @TORN
    @given(fail_after=st.integers(min_value=0, max_value=400))
    def test_partial_tmp_write_never_touches_target(
            self, tmp_path_factory, good_checkpoint, fail_after):
        # Tear the staged write itself at an arbitrary byte count: the
        # target path must remain byte-identical to the previous good
        # checkpoint regardless of where the write stopped.
        cp, raw = good_checkpoint
        tmp_dir = tmp_path_factory.mktemp("atomic")
        path = tmp_dir / "cp.json"
        cp.save(path)
        before = path.read_bytes()

        import repro.exec.checkpoint as cpmod
        real_fdopen = cpmod.os.fdopen

        class TornFile:
            def __init__(self, fh):
                self._fh = fh

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self._fh.close()
                return False

            def write(self, data):
                self._fh.write(data[:fail_after])
                raise TimeoutError("budget deadline during write")

        def torn_fdopen(fd, *a, **kw):
            return TornFile(real_fdopen(fd, *a, **kw))

        try:
            cpmod.os.fdopen = torn_fdopen
            with pytest.raises(TimeoutError):
                cp.save(path)
        finally:
            cpmod.os.fdopen = real_fdopen

        assert path.read_bytes() == before
        assert list(tmp_dir.glob("*.tmp")) == []
        assert JoinCheckpoint.load(path).to_dict() == cp.to_dict()
