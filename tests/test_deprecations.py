"""The params1/params2 → left/right rename: old keyword spellings keep
working, warn, and return identical results."""

import pytest

from repro.costmodel import AnalyticalTreeParams
from repro.costmodel.join_da import (join_da_breakdown, join_da_by_tree,
                                     join_da_total)
from repro.costmodel.join_na import (join_na_breakdown, join_na_total,
                                     stage_pairs)
from repro.costmodel.selectivity import (join_selectivity_fraction,
                                         join_selectivity_pairs,
                                         join_selectivity_pairs_grid)
from repro.costmodel.stages import Stage
from repro.datasets import uniform_rectangles

P1 = AnalyticalTreeParams(40_000, 0.5, 50, 2)
P2 = AnalyticalTreeParams(20_000, 0.3, 50, 2)

_STAGE = Stage(level1=1, level2=1, parent1=2, parent2=2,
               descends1=True, descends2=True)

PAIR_FUNCTIONS = [
    (stage_pairs, {"stage": _STAGE}),
    (join_na_breakdown, {}),
    (join_na_total, {}),
    (join_da_breakdown, {}),
    (join_da_total, {}),
    (join_da_by_tree, {}),
    (join_selectivity_pairs, {}),
    (join_selectivity_fraction, {}),
]


@pytest.mark.parametrize("fn, extra", PAIR_FUNCTIONS,
                         ids=lambda v: getattr(v, "__name__", ""))
def test_old_keywords_warn_and_match(fn, extra):
    new = fn(left=P1, right=P2, **extra)
    with pytest.warns(DeprecationWarning, match="'params1'.*'left'"):
        with pytest.warns(DeprecationWarning, match="'params2'.*'right'"):
            old = fn(params1=P1, params2=P2, **extra)
    assert old == new
    # Positional calls never see the shim and stay warning-free.
    assert fn(P1, P2, **extra) == new


@pytest.mark.parametrize("fn, extra", PAIR_FUNCTIONS,
                         ids=lambda v: getattr(v, "__name__", ""))
def test_mixing_old_and_new_spelling_is_an_error(fn, extra):
    with pytest.raises(TypeError, match="both 'params1'"):
        fn(params1=P1, left=P1, right=P2, **extra)
    with pytest.raises(TypeError, match="both 'params2'"):
        fn(left=P1, params2=P2, right=P2, **extra)


def test_grid_selectivity_dataset_keywords():
    ds1 = uniform_rectangles(300, 0.4, 2, seed=5)
    ds2 = uniform_rectangles(400, 0.5, 2, seed=6)
    new = join_selectivity_pairs_grid(left=ds1, right=ds2, resolution=4)
    with pytest.warns(DeprecationWarning, match="'dataset1'.*'left'"):
        with pytest.warns(DeprecationWarning,
                          match="'dataset2'.*'right'"):
            old = join_selectivity_pairs_grid(dataset1=ds1, dataset2=ds2,
                                              resolution=4)
    assert old == new
    with pytest.raises(TypeError, match="both 'dataset1'"):
        join_selectivity_pairs_grid(dataset1=ds1, left=ds1, right=ds2)


def test_new_keywords_do_not_warn():
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        join_na_total(left=P1, right=P2)
        join_da_total(left=P1, right=P2)
