"""The asyncio daemon end to end: real sockets, typed errors, CLI codes.

A module-scoped harness runs :class:`ServeDaemon` on a background event
loop listening on an ephemeral TCP port *and* a unix socket; tests talk
to it with :class:`ServeClient` exactly as a remote caller would.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.cli import EXIT_BUDGET, EXIT_USAGE, main
from repro.exec import AdmissionRejected
from repro.join import SpatialJoin
from repro.reliability import MalformedFileError
from repro.serve import (JoinService, Overloaded, ServeClient,
                         ServeConfig, ServeDaemon, ServiceDraining,
                         UnknownTree)
from repro.storage import PathBuffer

from .conftest import build_rstar, make_items


class DaemonHarness:
    """A ServeDaemon on its own event-loop thread."""

    def __init__(self, config: ServeConfig):
        self.service = JoinService(config)
        self.daemon = ServeDaemon(self.service)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever,
                                       daemon=True)
        self.thread.start()
        self.addresses = asyncio.run_coroutine_threadsafe(
            self.daemon.start(), self.loop).result(timeout=10)

    @property
    def http_url(self) -> str:
        return next(a for a in self.addresses if a.startswith("http://"))

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.daemon.stop(grace=5.0), self.loop).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(280, seed=101), max_entries=8)
    t2 = build_rstar(make_items(240, seed=102), max_entries=8)
    return t1, t2


@pytest.fixture(scope="module")
def direct(trees):
    t1, t2 = trees
    return SpatialJoin(t1, t2, PathBuffer()).run()


@pytest.fixture(scope="module")
def harness(trees, tmp_path_factory):
    sock_path = str(tmp_path_factory.mktemp("serve") / "repro.sock")
    h = DaemonHarness(ServeConfig(port=0, unix_path=sock_path,
                                  max_concurrency=4, queue_limit=8))
    h.service.register_tree("a", trees[0])
    h.service.register_tree("b", trees[1])
    yield h
    h.close()


@pytest.fixture(scope="module")
def client(harness):
    return ServeClient(harness.http_url, timeout=30.0)


class TestEndpoints:
    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["trees"] == ["a", "b"]

    def test_trees(self, client):
        doc = client.trees()
        assert [t["name"] for t in doc["trees"]] == ["a", "b"]

    def test_join_complete_matches_direct(self, client, direct):
        doc = client.join("a", "b", collect_pairs=True)
        assert doc["status"] == "complete"
        assert doc["na"] == direct.na_total
        assert doc["da"] == direct.da_total
        assert sorted(map(tuple, doc["pairs"])) == sorted(direct.pairs)

    def test_join_over_unix_socket(self, harness, direct):
        unix_url = next(a for a in harness.addresses
                        if a.startswith("unix:"))
        doc = ServeClient(unix_url, timeout=30.0).join("a", "b")
        assert doc["na"] == direct.na_total

    def test_metrics_scrape(self, client):
        client.join("a", "b")
        doc = client.metrics()
        assert doc["counters"]["serve.admitted"] >= 1
        assert doc["counters"]["serve.trees_registered"] == 2
        assert "serve.latency_ms" in doc["histograms"]

    def test_unknown_route_and_method(self, client):
        with pytest.raises(ValueError, match="404"):
            client.request("GET", "/nope")
        with pytest.raises(ValueError, match="405"):
            client.request("POST", "/metrics")

    def test_cancel_unknown_join_is_404(self, client):
        doc = client.request("POST", "/cancel", {"join_id": "j999"},
                             accept=(404,))
        assert doc["cancelled"] is False


class TestTypedErrorsOverHttp:
    def test_unknown_tree_404(self, client):
        with pytest.raises(UnknownTree):
            client.join("a", "missing")

    def test_bad_request_400(self, client):
        with pytest.raises(ValueError, match="400"):
            client.join("a", "b", bogus=1)

    def test_request_budget_rejection_413(self, client):
        with pytest.raises(AdmissionRejected) as err:
            client.join("a", "b", max_na=1, admission="reject")
        assert err.value.observed > 1     # machine-readable estimate

    def test_bad_resume_token_422(self, client):
        with pytest.raises(MalformedFileError):
            client.join("a", "b", resume_token="junk")

    def test_partial_then_resume_over_http(self, client, direct):
        first = client.join("a", "b", deadline=1e-6)
        assert first["status"] == "partial"
        final = client.join("a", "b",
                            resume_token=first["resume_token"])
        assert final["status"] == "complete"
        assert final["na"] == direct.na_total
        assert final["da"] == direct.da_total


class TestOverloadOverHttp:
    def test_queue_full_yields_429_with_retry_after(self, trees,
                                                    monkeypatch):
        h = DaemonHarness(ServeConfig(port=0, max_concurrency=1,
                                      queue_limit=0))
        try:
            h.service.register_tree("a", trees[0])
            h.service.register_tree("b", trees[1])
            started = threading.Event()
            release = threading.Event()
            original = h.service._run

            def gated(req, reg1, reg2, checkpoint, token, join_id):
                started.set()
                assert release.wait(30)
                return original(req, reg1, reg2, checkpoint, token,
                                join_id)

            monkeypatch.setattr(h.service, "_run", gated)
            c = ServeClient(h.http_url, timeout=30.0)
            occupier = threading.Thread(target=c.join, args=("a", "b"))
            occupier.start()
            assert started.wait(10)
            try:
                with pytest.raises(Overloaded) as err:
                    c.join("a", "b")
            finally:
                release.set()
                occupier.join(30)
            assert err.value.reason == "queue-full"
            assert err.value.retry_after > 0
        finally:
            h.close()

    def test_client_disconnect_cancels_join(self, trees, monkeypatch):
        h = DaemonHarness(ServeConfig(port=0))
        try:
            h.service.register_tree("a", trees[0])
            h.service.register_tree("b", trees[1])
            started = threading.Event()
            release = threading.Event()
            original = h.service._run

            def gated(req, reg1, reg2, checkpoint, token, join_id):
                started.set()
                assert release.wait(30)
                return original(req, reg1, reg2, checkpoint, token,
                                join_id)

            monkeypatch.setattr(h.service, "_run", gated)
            host, port = h.http_url[len("http://"):].split(":")
            body = json.dumps({"tree1": "a", "tree2": "b"}).encode()
            with socket.create_connection((host, int(port))) as raw:
                raw.sendall(b"POST /join HTTP/1.1\r\n"
                            b"Content-Length: %d\r\n\r\n%s"
                            % (len(body), body))
                assert started.wait(10)
            # Socket closed mid-join: the daemon should cancel the
            # request's token and record the disconnect.
            release.set()
            deadline = 10.0
            c = ServeClient(h.http_url, timeout=30.0)
            import time
            end = time.monotonic() + deadline
            while time.monotonic() < end:
                counters = c.metrics()["counters"]
                if counters.get("serve.partial"):
                    break
                time.sleep(0.05)
            counters = c.metrics()["counters"]
            assert counters.get("serve.client_disconnects") == 1
            # The orphaned join stopped at its next governor check and
            # checkpointed as a resumable partial result.
            assert counters.get("serve.partial") == 1
        finally:
            h.close()


    def test_trailing_bytes_are_not_a_disconnect(self, trees, direct,
                                                 monkeypatch):
        # Regression: the disconnect watchdog completed on ANY readable
        # bytes, so a client that pipelined a second request (valid
        # HTTP/1.1) had its running join spuriously cancelled and got a
        # partial result.  Only a true EOF means the client went away.
        h = DaemonHarness(ServeConfig(port=0))
        try:
            h.service.register_tree("a", trees[0])
            h.service.register_tree("b", trees[1])
            started = threading.Event()
            release = threading.Event()
            original = h.service._run

            def gated(req, reg1, reg2, checkpoint, token, join_id):
                started.set()
                assert release.wait(30)
                return original(req, reg1, reg2, checkpoint, token,
                                join_id)

            monkeypatch.setattr(h.service, "_run", gated)
            host, port = h.http_url[len("http://"):].split(":")
            body = json.dumps({"tree1": "a", "tree2": "b"}).encode()
            with socket.create_connection((host, int(port))) as raw:
                raw.sendall(b"POST /join HTTP/1.1\r\n"
                            b"Content-Length: %d\r\n\r\n%s"
                            % (len(body), body))
                assert started.wait(10)
                raw.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
                release.set()
                raw.settimeout(30)
                data = b""
                while chunk := raw.recv(65536):
                    data += chunk
            head, _, payload = data.partition(b"\r\n\r\n")
            assert head.split(b"\r\n", 1)[0] == b"HTTP/1.1 200 OK"
            doc = json.loads(payload)
            assert doc["status"] == "complete"
            assert doc["na"] == direct.na_total
            counters = h.service.metrics_snapshot()["counters"]
            assert "serve.client_disconnects" not in counters
        finally:
            h.close()


class TestDrainOverHttp:
    def test_draining_daemon_reports_503(self, trees):
        h = DaemonHarness(ServeConfig(port=0))
        try:
            h.service.register_tree("a", trees[0])
            h.service.register_tree("b", trees[1])
            c = ServeClient(h.http_url, timeout=30.0)
            assert h.service.drain(grace=1.0) is True
            assert c.healthz()["status"] == "draining"
            with pytest.raises(ServiceDraining):
                c.join("a", "b")
        finally:
            h.close()


class TestServeJoinCli:
    """``repro serve-join`` against a live daemon: the exit-code protocol."""

    def test_complete_exit_0(self, harness, direct, capsys):
        code = main(["serve-join", harness.http_url, "a", "b"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["na"] == direct.na_total

    def test_admission_rejected_exit_5_with_reason(self, harness,
                                                   capsys):
        code = main(["serve-join", harness.http_url, "a", "b",
                     "--max-na", "1"])
        assert code == EXIT_BUDGET
        doc = json.loads(capsys.readouterr().out)
        assert doc["error"] == "admission-rejected"
        assert doc["predicted"] is True

    def test_partial_exit_5_with_resume_token(self, harness, capsys):
        code = main(["serve-join", harness.http_url, "a", "b",
                     "--deadline", "0.000001"])
        assert code == EXIT_BUDGET
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["status"] == "partial"
        assert "resume_token" in doc
        assert "--resume-token" in captured.err

    def test_unknown_tree_exit_2(self, harness, capsys):
        code = main(["serve-join", harness.http_url, "a", "missing"])
        assert code == EXIT_USAGE
