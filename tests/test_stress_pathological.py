"""Pathological inputs: the cases that break naive R-tree code.

Minimum fan-out, massively duplicated keys, zero-area geometry, collinear
and extremely elongated rectangles — each has historically broken some
split heuristic (division by zero margins, infinite reinsertion loops,
unsplittable seed picks).  The suite drives every variant through them
and insists on structural validity plus correct query answers.
"""

import pytest

from repro.geometry import Rect
from repro.join import naive_join, spatial_join
from repro.rtree import (GuttmanRTree, RStarTree, check, hilbert_pack,
                         str_pack, validate)

VARIANT_BUILDERS = [
    ("rstar", lambda items: _dynamic(RStarTree(2, 4), items)),
    ("guttman-quad",
     lambda items: _dynamic(GuttmanRTree(2, 4, split="quadratic"),
                            items)),
    ("guttman-lin",
     lambda items: _dynamic(GuttmanRTree(2, 4, split="linear"), items)),
    ("str", lambda items: str_pack(items, 2, 4)),
    ("hilbert", lambda items: hilbert_pack(items, 2, 4)),
]


def _dynamic(tree, items):
    for rect, oid in items:
        tree.insert(rect, oid)
    return tree


def _all_oids(tree):
    return sorted(tree.range_query(Rect((0, 0), (1, 1))))


@pytest.mark.parametrize("name,builder", VARIANT_BUILDERS,
                         ids=[n for n, _b in VARIANT_BUILDERS])
class TestPathologicalInputs:
    def test_all_identical_rectangles(self, name, builder):
        rect = Rect((0.5, 0.5), (0.6, 0.6))
        items = [(rect, i) for i in range(100)]
        tree = builder(items)
        assert validate(tree) == []
        assert _all_oids(tree) == list(range(100))

    def test_all_identical_points(self, name, builder):
        point = Rect.point((0.3, 0.7))
        items = [(point, i) for i in range(60)]
        tree = builder(items)
        assert validate(tree) == []
        assert sorted(tree.range_query(point)) == list(range(60))

    def test_collinear_points(self, name, builder):
        items = [(Rect.point((i / 99, 0.5)), i) for i in range(100)]
        tree = builder(items)
        assert validate(tree) == []
        window = Rect((0.25, 0.0), (0.75, 1.0))
        want = sorted(i for i in range(100)
                      if 0.25 <= i / 99 <= 0.75)
        assert sorted(tree.range_query(window)) == want

    def test_extremely_elongated_rectangles(self, name, builder):
        # Full-width slivers force heavy overlap at every level.
        items = [(Rect((0.0, i / 200), (1.0, i / 200 + 0.004)), i)
                 for i in range(100)]
        tree = builder(items)
        assert validate(tree) == []
        probe = Rect.point((0.5, 0.25))
        want = sorted(i for i in range(100)
                      if i / 200 <= 0.25 <= i / 200 + 0.004)
        assert sorted(tree.range_query(probe)) == want

    def test_nested_rectangles(self, name, builder):
        # Russian dolls: every rectangle contains all smaller ones.
        items = []
        for i in range(80):
            half = 0.5 * (1.0 - i / 80)
            items.append((Rect((0.5 - half, 0.5 - half),
                               (0.5 + half, 0.5 + half)), i))
        tree = builder(items)
        assert validate(tree) == []
        assert sorted(tree.range_query(Rect.point((0.5, 0.5)))) == \
            list(range(80))

    def test_two_distant_clumps(self, name, builder):
        items = [(Rect.point((0.01 + i * 1e-5, 0.01)), i)
                 for i in range(40)]
        items += [(Rect.point((0.99 - i * 1e-5, 0.99)), 40 + i)
                  for i in range(40)]
        tree = builder(items)
        assert validate(tree) == []
        low = tree.range_query(Rect((0.0, 0.0), (0.1, 0.1)))
        assert sorted(low) == list(range(40))


class TestMinimumFanout:
    def test_m_equals_two(self):
        # The legal minimum node capacity.
        tree = RStarTree(2, 2)
        items = [(Rect.point((i / 30, (i * 7 % 30) / 30)), i)
                 for i in range(30)]
        for rect, oid in items:
            tree.insert(rect, oid)
        check(tree)
        assert _all_oids(tree) == list(range(30))

    def test_m_equals_two_delete_everything(self):
        tree = RStarTree(2, 2)
        items = [(Rect.point((i / 20, i / 20)), i) for i in range(20)]
        for rect, oid in items:
            tree.insert(rect, oid)
        for rect, oid in items:
            assert tree.delete(rect, oid)
        check(tree)
        assert len(tree) == 0


class TestDegenerateJoins:
    def test_join_of_identical_stacks(self):
        rect = Rect((0.4, 0.4), (0.5, 0.5))
        items1 = [(rect, i) for i in range(30)]
        items2 = [(rect, i) for i in range(30)]
        t1 = _dynamic(RStarTree(2, 4), items1)
        t2 = _dynamic(RStarTree(2, 4), items2)
        result = spatial_join(t1, t2)
        assert len(result.pairs) == 900          # full cross product
        assert result.da_total <= result.na_total

    def test_join_of_point_data(self):
        items1 = [(Rect.point((i / 50, i / 50)), i) for i in range(50)]
        items2 = [(Rect.point((i / 50, i / 50)), i) for i in range(50)]
        t1 = _dynamic(RStarTree(2, 4), items1)
        t2 = _dynamic(RStarTree(2, 4), items2)
        result = spatial_join(t1, t2)
        assert sorted(result.pairs) == sorted(
            naive_join(items1, items2))
        # Touching points qualify (closed-box semantics).
        assert len(result.pairs) >= 50

    def test_join_disjoint_halves_costs_little(self):
        left = [(Rect.point((i / 200 * 0.4, 0.5)), i)
                for i in range(100)]
        right = [(Rect.point((0.6 + i / 200 * 0.4, 0.5)), i)
                 for i in range(100)]
        t1 = _dynamic(RStarTree(2, 8), left)
        t2 = _dynamic(RStarTree(2, 8), right)
        result = spatial_join(t1, t2)
        assert result.pairs == []
        # Disjoint data prunes at the top: barely any pages touched.
        assert result.na_total <= 4
