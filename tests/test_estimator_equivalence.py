"""Property tests: the batch engine agrees with the scalar reference
formulas to 1e-12 absolute, on every backend, over the full domain."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costmodel import AnalyticalTreeParams
from repro.costmodel.join_da import join_da_breakdown
from repro.costmodel.join_na import join_na_breakdown
from repro.costmodel.range_query import range_query_na
from repro.costmodel.selectivity import join_selectivity_pairs
from repro.estimator import EstimateRequest, estimate_batch

TOL = 1e-12

cardinalities = st.integers(min_value=1, max_value=200_000)
densities = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
capacities = st.sampled_from([8, 24, 41, 50, 84])
dims = st.integers(min_value=1, max_value=3)
fills = st.sampled_from([0.3, 0.5, 0.67, 0.9, 1.0])
distances = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
modes = st.sampled_from(["traversal", "paper"])


def requests():
    return st.builds(
        EstimateRequest,
        n1=cardinalities, d1=densities, n2=cardinalities, d2=densities,
        max_entries=capacities, ndim=dims, fill=fills,
        max_entries_right=st.one_of(st.none(), capacities),
        fill_right=st.one_of(st.none(), fills),
        distance=distances,
        window=st.one_of(
            st.none(),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    )


def _scalar_reference(r: EstimateRequest, mode: str) -> dict:
    p1 = AnalyticalTreeParams(r.n1, r.d1, r.m_left, r.ndim, r.fill_left)
    p2 = AnalyticalTreeParams(r.n2, r.d2, r.m_right, r.ndim,
                              r.fill_right_)
    na = sum(c.total for c in join_na_breakdown(p1, p2))
    da = join_da_breakdown(p1, p2, mode)
    w = r.window_tuple()
    return {
        "height1": p1.height, "height2": p2.height,
        "na": na,
        "da": sum(c.total for c in da),
        "da_left": sum(c.cost1 for c in da),
        "da_right": sum(c.cost2 for c in da),
        "da_swapped": sum(
            c.total for c in join_da_breakdown(p2, p1, mode)),
        "selectivity": join_selectivity_pairs(p1, p2,
                                              distance=r.distance),
        "range_na": None if w is None else range_query_na(p1, w),
    }


def _assert_rows_match(result, reqs, mode):
    for i, r in enumerate(reqs):
        ref = _scalar_reference(r, mode)
        assert result.height1[i] == ref["height1"]
        assert result.height2[i] == ref["height2"]
        for fld in ("na", "da", "da_left", "da_right", "da_swapped",
                    "selectivity"):
            got = getattr(result, fld)[i]
            assert abs(got - ref[fld]) <= TOL, (fld, r, got, ref[fld])
        if ref["range_na"] is None:
            assert result.range_na[i] is None
        else:
            assert abs(result.range_na[i] - ref["range_na"]) <= TOL


@settings(max_examples=150, deadline=None)
@given(st.lists(requests(), min_size=1, max_size=8), modes)
def test_batch_matches_scalar_reference(reqs, mode):
    _assert_rows_match(estimate_batch(reqs, mode), reqs, mode)


# The env var is constant across examples, so the fixture resetting
# once per test (not per example) is exactly what we want.
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(reqs=st.lists(requests(), min_size=1, max_size=6), mode=modes)
def test_pure_python_matches_scalar_reference(reqs, mode, monkeypatch):
    monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
    result = estimate_batch(reqs, mode)
    assert result.backend == "python"
    _assert_rows_match(result, reqs, mode)


BOUNDARY_GRID = [
    # check_model_params boundaries: N=1 (degenerate single-object
    # tree), fill=1.0 (c*M == M), cM barely above 1, zero density,
    # mixed heights in both directions, every supported ndim.
    EstimateRequest(n1=1, d1=0.0, n2=1, d2=0.0, max_entries=2, ndim=1,
                    fill=1.0),
    EstimateRequest(n1=1, d1=2.0, n2=200_000, d2=0.0, max_entries=8,
                    ndim=3, fill=0.3, window=0.0),
    EstimateRequest(n1=2, d1=1e-308, n2=3, d2=1e308, max_entries=2,
                    ndim=2, fill=0.9, distance=0.5),
    EstimateRequest(n1=9, d1=0.5, n2=10, d2=0.5, max_entries=8, ndim=2,
                    fill=0.3),                     # c*M = 2.4, height 3
    EstimateRequest(n1=200_000, d1=2.0, n2=41, d2=1.3, max_entries=84,
                    ndim=2, fill=0.67, max_entries_right=8,
                    fill_right=1.0, window=1.0, distance=0.001),
    EstimateRequest(n1=100_000, d1=0.5, n2=100, d2=0.5, max_entries=50,
                    ndim=2),                       # height 3 vs 1
    EstimateRequest(n1=100, d1=0.5, n2=100_000, d2=0.5, max_entries=50,
                    ndim=2),                       # height 1 vs 3
]


@pytest.mark.parametrize("mode", ["traversal", "paper"])
def test_boundary_grid(mode):
    _assert_rows_match(estimate_batch(BOUNDARY_GRID, mode),
                       BOUNDARY_GRID, mode)


@pytest.mark.parametrize("mode", ["traversal", "paper"])
def test_boundary_grid_pure_python(mode, monkeypatch):
    monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
    _assert_rows_match(estimate_batch(BOUNDARY_GRID, mode),
                       BOUNDARY_GRID, mode)
