"""Persistence of datasets and trees."""

import pytest

from repro.datasets import SpatialDataset, uniform_rectangles
from repro.geometry import Rect
from repro.io import load_dataset, load_tree, save_dataset, save_tree
from repro.join import spatial_join
from repro.rtree import GuttmanRTree, check, str_pack

from .conftest import build_rstar, make_items


class TestDatasetRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        ds = uniform_rectangles(200, 0.4, 2, seed=1)
        path = tmp_path / "ds.txt"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.items == ds.items
        assert loaded.name == ds.name

    def test_one_dimensional(self, tmp_path):
        ds = uniform_rectangles(50, 0.2, 1, seed=2)
        path = tmp_path / "ds1.txt"
        save_dataset(ds, path)
        assert load_dataset(path).items == ds.items

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_dataset(SpatialDataset([], name="nothing"), path)
        loaded = load_dataset(path)
        assert len(loaded) == 0
        assert loaded.name == "nothing"

    def test_explicit_name_overrides(self, tmp_path):
        ds = uniform_rectangles(5, 0.1, 2, seed=3)
        path = tmp_path / "named.txt"
        save_dataset(ds, path)
        assert load_dataset(path, name="other").name == "other"

    def test_hand_written_file(self, tmp_path):
        path = tmp_path / "hand.txt"
        path.write_text("# comment\n"
                        "7 0.1 0.2 0.3 0.4\n"
                        "\n"
                        "9 0.0 0.0 1.0 1.0\n")
        loaded = load_dataset(path)
        assert loaded.items == [
            (Rect((0.1, 0.2), (0.3, 0.4)), 7),
            (Rect((0.0, 0.0), (1.0, 1.0)), 9),
        ]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 0.1 0.2 0.3\n")   # odd coordinate count
        with pytest.raises(ValueError, match="bad.txt:1"):
            load_dataset(path)


class TestTreeRoundTrip:
    def test_structure_preserved(self, tmp_path):
        tree = build_rstar(make_items(300, seed=4), max_entries=8)
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        loaded = load_tree(path)
        check(loaded)
        assert loaded.height == tree.height
        assert loaded.size == tree.size
        assert loaded.root_id == tree.root_id
        assert len(loaded.pager) == len(tree.pager)

    def test_queries_identical(self, tmp_path):
        items = make_items(250, seed=5)
        tree = build_rstar(items)
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        loaded = load_tree(path)
        window = Rect((0.2, 0.1), (0.6, 0.5))
        assert sorted(loaded.range_query(window)) == \
            sorted(tree.range_query(window))

    def test_join_counts_identical(self, tmp_path):
        t1 = build_rstar(make_items(200, seed=6))
        t2 = build_rstar(make_items(200, seed=7))
        save_tree(t1, tmp_path / "t1.json")
        loaded = load_tree(tmp_path / "t1.json")
        original = spatial_join(t1, t2, collect_pairs=False)
        reloaded = spatial_join(loaded, t2, collect_pairs=False)
        assert (original.na_total, original.da_total) == \
            (reloaded.na_total, reloaded.da_total)

    def test_loaded_tree_supports_updates(self, tmp_path):
        tree = build_rstar(make_items(100, seed=8))
        save_tree(tree, tmp_path / "t.json")
        loaded = load_tree(tmp_path / "t.json")
        extra = make_items(50, seed=9)
        for rect, oid in extra:
            loaded.insert(rect, oid + 10_000)
        check(loaded)
        assert len(loaded) == 150

    def test_other_variants_round_trip(self, tmp_path):
        items = make_items(150, seed=10)
        guttman = GuttmanRTree(2, 8)
        for rect, oid in items:
            guttman.insert(rect, oid)
        packed = str_pack(items, 2, 8)
        for i, tree in enumerate((guttman, packed)):
            path = tmp_path / f"v{i}.json"
            save_tree(tree, path)
            loaded = load_tree(path)
            check(loaded)
            assert sorted(loaded.range_query(Rect((0, 0), (1, 1)))) == \
                sorted(o for _r, o in items)

    def test_empty_tree(self, tmp_path):
        from repro.rtree import RStarTree
        tree = RStarTree(2, 8)
        save_tree(tree, tmp_path / "empty.json")
        loaded = load_tree(tmp_path / "empty.json")
        assert len(loaded) == 0
        assert loaded.range_query(Rect((0, 0), (1, 1))) == []

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 999}')
        with pytest.raises(ValueError, match="unsupported tree format"):
            load_tree(path)


class TestDatasetErrorContext:
    def test_inverted_rect_reports_line(self, tmp_path):
        path = tmp_path / "inv.txt"
        path.write_text("0 0.1 0.1 0.05 0.2\n")   # hi < lo in dim 0
        with pytest.raises(ValueError, match="inv.txt:1"):
            load_dataset(path)

    def test_non_numeric_reports_line(self, tmp_path):
        path = tmp_path / "nan.txt"
        path.write_text("0 0.1 0.1 0.2 0.2\n"
                        "1 0.1 oops 0.2 0.2\n")
        with pytest.raises(ValueError, match="nan.txt:2"):
            load_dataset(path)

    def test_nan_coordinate_rejected_with_line(self, tmp_path):
        path = tmp_path / "nanval.txt"
        path.write_text("0 nan 0.1 0.2 0.2\n")
        with pytest.raises(ValueError, match="nanval.txt:1"):
            load_dataset(path)
