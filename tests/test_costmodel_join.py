"""Eqs. 6-12: the join cost models (NA and DA)."""

import pytest

from repro.costmodel import (AnalyticalTreeParams, join_da_breakdown,
                             join_da_by_tree, join_da_total,
                             join_na_breakdown, join_na_total, stage_pairs,
                             traversal_stages)


def params(n, d=0.5, m=50, ndim=2, fill=0.67):
    return AnalyticalTreeParams(n, d, m, ndim, fill)


class TestStages:
    def test_equal_heights(self):
        p = params(8000)        # height 3 at M = 50
        stages = traversal_stages(p, p)
        assert [(s.level1, s.level2) for s in stages] == [(2, 2), (1, 1)]
        assert stages[0].parent1 == p.height
        assert all(s.descends1 and s.descends2 for s in stages)

    def test_different_heights_pairing(self):
        # Eq. 11's j' mapping: taller tree descends alone at the bottom.
        tall = params(9000, m=24)      # height 4
        short = params(2000, m=24)     # height 3
        assert tall.height == short.height + 1
        stages = traversal_stages(tall, short)
        levels = [(s.level1, s.level2) for s in stages]
        assert levels == [(3, 2), (2, 1), (1, 1)]
        assert stages[-1].descends2 is False

    def test_height_one_side(self):
        tiny = params(10)
        big = params(8000)
        stages = traversal_stages(tiny, big)
        assert [(s.level1, s.level2) for s in stages] == [(1, 2), (1, 1)]

    def test_stage_count(self):
        a, b = params(8000), params(9000, m=24)
        assert len(traversal_stages(a, b)) == max(a.height, b.height) - 1


class TestJoinNA:
    def test_eq6_hand_computed(self):
        p1, p2 = params(8000), params(4000)
        stages = traversal_stages(p1, p2)
        top = stages[0]
        n1, s1 = p1.nodes_at(2), p1.extents_at(2)
        n2, s2 = p2.nodes_at(2), p2.extents_at(2)
        expected = n1 * n2 * min(1.0, s1[0] + s2[0]) ** 2
        assert stage_pairs(p1, p2, top) == pytest.approx(expected)

    def test_eq7_total_is_twice_pair_sum(self):
        p1, p2 = params(8000), params(4000)
        pair_sum = sum(stage_pairs(p1, p2, s)
                       for s in traversal_stages(p1, p2))
        assert join_na_total(p1, p2) == pytest.approx(2 * pair_sum)

    def test_symmetric_in_roles(self):
        # "Notice that Eq. 7 is symmetric with respect to R1 and R2."
        p1, p2 = params(8000), params(3000, d=0.3)
        assert join_na_total(p1, p2) == pytest.approx(
            join_na_total(p2, p1))

    def test_symmetric_across_heights(self):
        p1, p2 = params(9000, m=24), params(2000, m=24)
        assert p1.height != p2.height
        assert join_na_total(p1, p2) == pytest.approx(
            join_na_total(p2, p1))

    def test_monotone_in_cardinality(self):
        base = params(4000)
        costs = [join_na_total(base, params(n))
                 for n in (1000, 2000, 4000, 8000)]
        assert costs == sorted(costs)

    def test_monotone_in_density(self):
        base = params(4000, d=0.5)
        costs = [join_na_total(base, params(4000, d=d))
                 for d in (0.2, 0.4, 0.6, 0.8)]
        assert costs == sorted(costs)

    def test_breakdown_sums_to_total(self):
        p1, p2 = params(8000), params(4000)
        breakdown = join_na_breakdown(p1, p2)
        assert sum(c.total for c in breakdown) == pytest.approx(
            join_na_total(p1, p2))

    def test_height_one_side_charges_only_other(self):
        tiny = params(10)
        big = params(8000)
        breakdown = join_na_breakdown(tiny, big)
        assert all(c.cost1 == 0.0 for c in breakdown)
        assert any(c.cost2 > 0.0 for c in breakdown)

    def test_ndim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            join_na_total(params(100, ndim=1, m=84), params(100, ndim=2))

    def test_one_dimensional(self):
        p1, p2 = params(8000, m=84, ndim=1), params(4000, m=84, ndim=1)
        assert join_na_total(p1, p2) > 0


class TestJoinDA:
    def test_da_below_na(self):
        p1, p2 = params(8000), params(4000)
        assert join_da_total(p1, p2) < join_na_total(p1, p2)

    def test_eq9_r1_cost_equals_na_share(self):
        p1, p2 = params(8000), params(4000)
        na_share = sum(c.cost1 for c in join_na_breakdown(p1, p2))
        da1, _da2 = join_da_by_tree(p1, p2)
        assert da1 == pytest.approx(na_share)

    def test_eq8_r2_cost_uses_parent_level(self):
        from repro.costmodel import intsect
        p1, p2 = params(8000), params(4000)
        stages = traversal_stages(p1, p2)
        bottom = stages[-1]
        expected = p2.nodes_at(1) * intsect(
            p1.nodes_at(2), p1.extents_at(2), p2.extents_at(1))
        costs = join_da_breakdown(p1, p2)
        assert costs[-1].cost2 == pytest.approx(expected)

    def test_asymmetric_in_roles(self):
        # Eq. 10 "is sensitive to the two indexes, R1 and R2".
        p_small, p_big = params(2000), params(9000)
        ab = join_da_total(p_small, p_big)
        ba = join_da_total(p_big, p_small)
        assert ab != pytest.approx(ba)

    def test_query_role_prefers_small_tree_equal_heights(self):
        # Paper §4.1: for equal heights, the less populated index should
        # play the query (R2) role.
        p_small, p_big = params(2000), params(4000)
        assert p_small.height == p_big.height
        better = join_da_total(p_big, p_small)    # small as query
        worse = join_da_total(p_small, p_big)     # big as query
        assert better < worse

    def test_breakdown_sums_to_total(self):
        p1, p2 = params(9000), params(3000)
        assert sum(c.total for c in join_da_breakdown(p1, p2)) == \
            pytest.approx(join_da_total(p1, p2))

    def test_pinned_r2_leaf_costs_nothing_lower_down(self):
        # Eq. 12 (h1 > h2): once R2 reaches its leaves, only R1 pays.
        tall = params(9000, m=24)
        short = params(2000, m=24)
        breakdown = join_da_breakdown(tall, short)
        pinned = [c for c in breakdown if not c.stage.descends2]
        assert pinned
        assert all(c.cost2 == 0.0 for c in pinned)
        assert all(c.cost1 > 0.0 for c in pinned)

    def test_pinned_r1_leaf_still_pays(self):
        # Eq. 12 (h1 < h2): the inner tree keeps being re-read while the
        # query tree descends (the 2 * DA(R2, j) branch).
        short = params(2000, m=24)
        tall = params(9000, m=24)
        breakdown = join_da_breakdown(short, tall)
        pinned = [c for c in breakdown if not c.stage.descends1]
        assert pinned
        assert all(c.cost1 > 0.0 for c in pinned)
        assert all(c.cost2 > 0.0 for c in pinned)

    def test_equal_height_special_case_of_general(self):
        # Eqs. 7/10 are "special cases" of Eqs. 11/12 for h1 = h2: the
        # general stage machinery must reduce to the equal-height sums.
        p1, p2 = params(8000), params(4000)
        assert p1.height == p2.height
        stages = traversal_stages(p1, p2)
        assert all(s.level1 == s.level2 for s in stages)

    def test_by_tree_sums_to_total(self):
        p1, p2 = params(9000), params(3000)
        da1, da2 = join_da_by_tree(p1, p2)
        assert da1 + da2 == pytest.approx(join_da_total(p1, p2))

    def test_ndim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            join_da_total(params(100, ndim=1, m=84), params(100, ndim=2))


class TestMixedHeightModes:
    def test_modes_identical_for_equal_heights(self):
        p1, p2 = params(8000), params(4000)
        assert p1.height == p2.height
        assert join_da_total(p1, p2, "traversal") == pytest.approx(
            join_da_total(p1, p2, "paper"))

    def test_modes_differ_when_r2_taller(self):
        short = params(2000, m=24)
        tall = params(9000, m=24)
        assert short.height < tall.height
        traversal = join_da_total(short, tall, "traversal")
        paper = join_da_total(short, tall, "paper")
        assert traversal != pytest.approx(paper)
        # The literal reading charges the pinned R1 less (its Eq. 8 term
        # uses sparser upper R1 levels), which is what creates the
        # paper's Figure 7b AREA exceptions.
        assert paper < traversal

    def test_modes_identical_when_r1_taller(self):
        # The readings only disagree on the h1 < h2 branch.
        tall = params(9000, m=24)
        short = params(2000, m=24)
        assert join_da_total(tall, short, "traversal") == pytest.approx(
            join_da_total(tall, short, "paper"))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mixed_height_mode"):
            join_da_total(params(100), params(100), "hybrid")
