"""Retry policy semantics and the resilient metered reader."""

import pytest

from repro.reliability import (FaultInjector, FaultyPager, ResilientReader,
                               RetryExhaustedError, RetryPolicy,
                               TransientPageError)
from repro.storage import AccessStats, NoBuffer, Pager, PathBuffer


class FailNTimesPager:
    """Deterministic stub: the first ``n`` reads of a page fail."""

    def __init__(self, fail_first: int, payload: str = "payload"):
        self.fail_first = fail_first
        self.payload = payload
        self.attempts = 0

    def read(self, page_id: int):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise TransientPageError(page_id, self.attempts)
        return self.payload


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="max_backoff"):
            RetryPolicy(base_backoff=1.0, max_backoff=0.5)

    def test_exponential_growth(self):
        policy = RetryPolicy(base_backoff=0.001, multiplier=2.0,
                             max_backoff=1.0)
        assert policy.backoff(1) == pytest.approx(0.001)
        assert policy.backoff(2) == pytest.approx(0.002)
        assert policy.backoff(5) == pytest.approx(0.016)

    def test_backoff_capped(self):
        policy = RetryPolicy(base_backoff=0.01, multiplier=10.0,
                             max_backoff=0.05)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.05)   # capped
        assert policy.backoff(9) == pytest.approx(0.05)

    def test_attempt_numbering(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestResilientReader:
    def test_succeeds_after_retries_and_accounts_them(self):
        pager = FailNTimesPager(fail_first=3)
        stats = AccessStats()
        policy = RetryPolicy(max_attempts=5, base_backoff=0.001,
                             multiplier=2.0, max_backoff=1.0)
        reader = ResilientReader(pager, "T", stats, NoBuffer(), policy)
        assert reader.fetch(7, level=1) == "payload"
        # One NA/DA for the successful fetch, three recorded retries.
        assert stats.na("T") == 1
        assert stats.da("T") == 1
        assert stats.retry_count("T") == 3
        assert stats.retries[("T", 1)] == 3
        # Backoff 0.001 + 0.002 + 0.004, accounted but never slept.
        assert stats.accounted_backoff == pytest.approx(0.007)

    def test_exhaustion_raises_with_attempt_count(self):
        pager = FailNTimesPager(fail_first=100)
        stats = AccessStats()
        reader = ResilientReader(pager, "T", stats, NoBuffer(),
                                 RetryPolicy(max_attempts=4))
        with pytest.raises(RetryExhaustedError) as excinfo:
            reader.fetch(5, level=2)
        assert excinfo.value.attempts == 4
        assert pager.attempts == 4
        # The failed fetch never lands in NA/DA; the 3 re-attempts do
        # land in the retry counters.
        assert stats.na("T") == 0
        assert stats.da("T") == 0
        assert stats.retry_count("T") == 3

    def test_exhaustion_is_a_transient_error(self):
        reader = ResilientReader(FailNTimesPager(10), "T", AccessStats(),
                                 NoBuffer(), RetryPolicy(max_attempts=1))
        with pytest.raises(TransientPageError):
            reader.fetch(0, level=1)

    def test_no_faults_behaves_like_metered_reader(self):
        pager = Pager()
        pid = pager.allocate("node")
        stats = AccessStats()
        reader = ResilientReader(pager, "T", stats, PathBuffer())
        assert reader.fetch(pid, level=1) == "node"
        assert reader.fetch(pid, level=1) == "node"
        assert stats.na("T") == 2
        assert stats.da("T") == 1          # second read hits the buffer
        assert stats.retry_count() == 0
        assert stats.accounted_backoff == 0.0

    def test_read_pinned_retries_without_charging(self):
        pager = FailNTimesPager(fail_first=2, payload="root")
        stats = AccessStats()
        reader = ResilientReader(pager, "T", stats, NoBuffer(),
                                 RetryPolicy(max_attempts=5))
        assert reader.read_pinned(0, level=3) == "root"
        assert stats.na() == 0 and stats.da() == 0
        assert stats.retry_count("T") == 2

    def test_with_faulty_pager_eventually_reads_everything(self):
        inner = Pager()
        ids = [inner.allocate(f"n{i}") for i in range(50)]
        pager = FaultyPager(inner, FaultInjector(seed=11,
                                                 transient_rate=0.3))
        stats = AccessStats()
        reader = ResilientReader(pager, "T", stats, NoBuffer(),
                                 RetryPolicy(max_attempts=30))
        for pid in ids:
            assert reader.fetch(pid, level=1) == f"n{pid}"
        assert stats.na("T") == 50
        assert stats.retry_count("T") > 0


class TestAccessStatsRetryBookkeeping:
    def test_merge_and_reset_cover_retries(self):
        a, b = AccessStats(), AccessStats()
        a.record_retry("T", 1, backoff=0.01)
        b.record_retry("T", 1, backoff=0.02)
        b.record_retry("U", 2, backoff=0.03)
        a.merge(b)
        assert a.retries[("T", 1)] == 2
        assert a.retry_count() == 3
        assert a.retry_count("U") == 1
        assert a.accounted_backoff == pytest.approx(0.06)
        a.reset()
        assert a.retry_count() == 0
        assert a.accounted_backoff == 0.0

    def test_as_dict_includes_retries(self):
        stats = AccessStats()
        stats.record("T", 1, buffer_hit=False)
        stats.record_retry("T", 1, backoff=0.005)
        d = stats.as_dict()
        assert d["retries"] == {"T@1": 1}
        assert d["accounted_backoff"] == pytest.approx(0.005)
