"""k-nearest-neighbour search."""

import pytest

from repro.rtree import brute_force_neighbors, nearest_neighbors
from repro.storage import AccessStats, MeteredReader, NoBuffer

from .conftest import build_rstar, make_items


class TestNearestNeighbors:
    def test_matches_brute_force(self, items_200, rstar_200):
        for point in ((0.5, 0.5), (0.0, 0.0), (0.99, 0.2)):
            got = nearest_neighbors(rstar_200, point, 10)
            want = brute_force_neighbors(items_200, point, 10)
            assert [d for _o, d in got] == pytest.approx(
                [d for _o, d in want])
            # Oids may differ only among exact distance ties.
            for (o1, d1), (o2, d2) in zip(got, want):
                if d1 != d2:
                    assert o1 == o2

    def test_distances_sorted(self, rstar_200):
        got = nearest_neighbors(rstar_200, (0.3, 0.7), 25)
        dists = [d for _o, d in got]
        assert dists == sorted(dists)

    def test_k_larger_than_tree(self, items_200, rstar_200):
        got = nearest_neighbors(rstar_200, (0.5, 0.5), 500)
        assert len(got) == len(items_200)

    def test_k_zero(self, rstar_200):
        assert nearest_neighbors(rstar_200, (0.5, 0.5), 0) == []

    def test_empty_tree(self):
        from repro.rtree import RStarTree
        tree = RStarTree(2, 8)
        assert nearest_neighbors(tree, (0.5, 0.5), 3) == []

    def test_point_inside_rect_distance_zero(self):
        items = make_items(50, seed=1, side=0.2)
        tree = build_rstar(items)
        rect, oid = items[0]
        got = nearest_neighbors(tree, rect.center, 1)
        assert got[0][1] == 0.0

    def test_invalid_args(self, rstar_200):
        with pytest.raises(ValueError):
            nearest_neighbors(rstar_200, (0.5, 0.5), -1)
        with pytest.raises(ValueError):
            nearest_neighbors(rstar_200, (0.5,), 3)

    def test_one_dimensional(self):
        items = make_items(100, ndim=1, seed=2)
        tree = build_rstar(items, ndim=1)
        got = nearest_neighbors(tree, (0.4,), 5)
        want = brute_force_neighbors(items, (0.4,), 5)
        assert [d for _o, d in got] == pytest.approx(
            [d for _o, d in want])

    def test_reads_fewer_nodes_than_full_scan(self, rstar_200):
        stats = AccessStats()
        reader = MeteredReader(rstar_200.pager, "T", stats, NoBuffer())
        nearest_neighbors(rstar_200, (0.5, 0.5), 3, reader=reader)
        non_root = sum(1 for n in rstar_200.nodes()
                       if n.page_id != rstar_200.root_id)
        assert 0 < stats.na("T") < non_root

    def test_root_not_charged(self, rstar_200):
        stats = AccessStats()
        reader = MeteredReader(rstar_200.pager, "T", stats, NoBuffer())
        nearest_neighbors(rstar_200, (0.1, 0.1), 1, reader=reader)
        assert stats.na("T", level=rstar_200.height) == 0
