"""The plane-sweep pair enumerator and its SJ integration."""

import pytest

from repro.geometry import Rect
from repro.join import naive_join, spatial_join
from repro.join.plane_sweep import nested_loop_pairs, sweep_pairs
from repro.rtree import Entry

from .conftest import build_rstar, make_items


def entries(rects):
    return [Entry(r, i) for i, r in enumerate(rects)]


class TestSweepPairs:
    def test_finds_all_axis_overlapping_pairs(self):
        e1 = entries([Rect((0.0, 0.0), (0.3, 1.0)),
                      Rect((0.5, 0.0), (0.8, 1.0))])
        e2 = entries([Rect((0.2, 0.0), (0.6, 1.0))])
        pairs = {(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)}
        assert pairs == {(0, 0), (1, 0)}

    def test_skips_axis_disjoint_pairs(self):
        e1 = entries([Rect((0.0, 0.0), (0.1, 1.0))])
        e2 = entries([Rect((0.5, 0.0), (0.6, 1.0))])
        assert list(sweep_pairs(e1, e2)) == []

    def test_superset_of_true_intersections(self):
        items1 = make_items(60, seed=1)
        items2 = make_items(60, seed=2)
        e1 = entries([r for r, _o in items1])
        e2 = entries([r for r, _o in items2])
        swept = {(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)}
        truly = {(i, j) for i, (r1, _a) in enumerate(items1)
                 for j, (r2, _b) in enumerate(items2)
                 if r1.intersects(r2)}
        assert truly <= swept

    def test_never_more_than_cross_product(self):
        e1 = entries([r for r, _o in make_items(40, seed=3)])
        e2 = entries([r for r, _o in make_items(40, seed=4)])
        assert sum(1 for _p in sweep_pairs(e1, e2)) <= 1600

    def test_empty_sides(self):
        e = entries([Rect((0, 0), (1, 1))])
        assert list(sweep_pairs([], e)) == []
        assert list(sweep_pairs(e, [])) == []

    def test_alternate_axis(self):
        e1 = entries([Rect((0.0, 0.0), (1.0, 0.1))])
        e2 = entries([Rect((0.0, 0.5), (1.0, 0.6))])
        assert list(sweep_pairs(e1, e2, axis=1)) == []
        assert len(list(sweep_pairs(e1, e2, axis=0))) == 1


class TestNestedLoopPairs:
    def test_full_cross_product_in_paper_order(self):
        e1 = entries([Rect((0, 0), (1, 1)), Rect((0, 0), (1, 1))])
        e2 = entries([Rect((0, 0), (1, 1))])
        out = [(a.ref, b.ref) for a, b, _c in nested_loop_pairs(e1, e2)]
        assert out == [(0, 0), (1, 0)]


class TestSweepInSpatialJoin:
    def test_same_pairs_as_nested_loop(self):
        a = make_items(200, seed=5)
        b = make_items(200, seed=6)
        t1, t2 = build_rstar(a), build_rstar(b)
        nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
        ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
        assert sorted(nl.pairs) == sorted(ps.pairs) == \
            sorted(naive_join(a, b))

    def test_fewer_comparisons(self):
        a = make_items(400, seed=7)
        b = make_items(400, seed=8)
        t1, t2 = build_rstar(a, max_entries=16), \
            build_rstar(b, max_entries=16)
        nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
        ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
        assert ps.comparisons < nl.comparisons

    def test_na_unchanged(self):
        # The sweep changes the order pairs are found in, not which node
        # pairs qualify — total ReadPage count is identical.
        a = make_items(300, seed=9)
        b = make_items(300, seed=10)
        t1, t2 = build_rstar(a), build_rstar(b)
        nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
        ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
        assert ps.na_total == nl.na_total

    def test_unknown_enumeration_rejected(self):
        t = build_rstar(make_items(10, seed=11))
        with pytest.raises(ValueError, match="pair_enumeration"):
            spatial_join(t, t, pair_enumeration="quantum")
