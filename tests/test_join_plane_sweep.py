"""The plane-sweep pair enumerator and its SJ integration."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.join import (PAIR_ENUMERATIONS, WithinDistance, naive_join,
                        spatial_join)
from repro.join.plane_sweep import (nested_loop_pairs, sweep_pairs,
                                    sweep_pairs_batch)
from repro.rtree import Entry

from .conftest import build_rstar, make_items

SLOW = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


def entries(rects):
    return [Entry(r, i) for i, r in enumerate(rects)]


class TestSweepPairs:
    def test_finds_all_axis_overlapping_pairs(self):
        e1 = entries([Rect((0.0, 0.0), (0.3, 1.0)),
                      Rect((0.5, 0.0), (0.8, 1.0))])
        e2 = entries([Rect((0.2, 0.0), (0.6, 1.0))])
        pairs = {(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)}
        assert pairs == {(0, 0), (1, 0)}

    def test_skips_axis_disjoint_pairs(self):
        e1 = entries([Rect((0.0, 0.0), (0.1, 1.0))])
        e2 = entries([Rect((0.5, 0.0), (0.6, 1.0))])
        assert list(sweep_pairs(e1, e2)) == []

    def test_superset_of_true_intersections(self):
        items1 = make_items(60, seed=1)
        items2 = make_items(60, seed=2)
        e1 = entries([r for r, _o in items1])
        e2 = entries([r for r, _o in items2])
        swept = {(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)}
        truly = {(i, j) for i, (r1, _a) in enumerate(items1)
                 for j, (r2, _b) in enumerate(items2)
                 if r1.intersects(r2)}
        assert truly <= swept

    def test_never_more_than_cross_product(self):
        e1 = entries([r for r, _o in make_items(40, seed=3)])
        e2 = entries([r for r, _o in make_items(40, seed=4)])
        assert sum(1 for _p in sweep_pairs(e1, e2)) <= 1600

    def test_empty_sides(self):
        e = entries([Rect((0, 0), (1, 1))])
        assert list(sweep_pairs([], e)) == []
        assert list(sweep_pairs(e, [])) == []

    def test_alternate_axis(self):
        e1 = entries([Rect((0.0, 0.0), (1.0, 0.1))])
        e2 = entries([Rect((0.0, 0.5), (1.0, 0.6))])
        assert list(sweep_pairs(e1, e2, axis=1)) == []
        assert len(list(sweep_pairs(e1, e2, axis=0))) == 1


def tied_entries():
    """Entries engineered to collide on every sort key component but ref:
    identical lo, several identical (lo, hi) combinations."""
    rects = [Rect((0.1, 0.0), (0.5, 1.0)),
             Rect((0.1, 0.0), (0.5, 1.0)),   # exact duplicate extent
             Rect((0.1, 0.0), (0.7, 1.0)),   # tied lo, longer
             Rect((0.3, 0.0), (0.5, 1.0)),
             Rect((0.3, 0.0), (0.5, 1.0))]
    return [Entry(r, i) for i, r in enumerate(rects)]


class TestSweepDeterminism:
    def test_emission_order_is_permutation_invariant(self):
        # Tied lower boundaries used to make the order depend on input
        # order (Python's sort is stable); the (lo, hi, ref) key is a
        # total order, so any shuffle must emit the same sequence.
        e1, e2 = tied_entries(), tied_entries()
        reference = [(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)]
        rng = random.Random(42)
        for _ in range(10):
            s1, s2 = list(e1), list(e2)
            rng.shuffle(s1)
            rng.shuffle(s2)
            got = [(a.ref, b.ref) for a, b, _c in sweep_pairs(s1, s2)]
            assert got == reference

    def test_entries1_opens_on_exact_key_tie(self):
        # Equal (lo, hi, ref) on both sides: the documented order says
        # entries1's entry opens first.
        r = Rect((0.2, 0.0), (0.4, 1.0))
        e1 = [Entry(r, 7)]
        e2 = [Entry(r, 7)]
        assert [(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)] \
            == [(7, 7)]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_batch_identical_to_scalar(self, seed):
        items1 = make_items(80, seed=seed)
        items2 = make_items(70, seed=seed + 100)
        e1 = [Entry(r, i) for i, (r, _o) in enumerate(items1)]
        e2 = [Entry(r, i) for i, (r, _o) in enumerate(items2)]
        scalar = [(a.ref, b.ref, c) for a, b, c in sweep_pairs(e1, e2)]
        batch = [(a.ref, b.ref, c)
                 for a, b, c in sweep_pairs_batch(e1, e2)]
        assert batch == scalar

    def test_batch_identical_on_ties(self):
        e1, e2 = tied_entries(), tied_entries()
        scalar = [(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)]
        batch = [(a.ref, b.ref)
                 for a, b, _c in sweep_pairs_batch(e1, e2)]
        assert batch == scalar

    def test_batch_empty_sides(self):
        e = [Entry(Rect((0, 0), (1, 1)), 0)]
        assert list(sweep_pairs_batch([], e)) == []
        assert list(sweep_pairs_batch(e, [])) == []

    def test_batch_pure_python_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        e1, e2 = tied_entries(), tied_entries()
        scalar = [(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)]
        batch = [(a.ref, b.ref)
                 for a, b, _c in sweep_pairs_batch(e1, e2)]
        assert batch == scalar


class TestNestedLoopPairs:
    def test_full_cross_product_in_paper_order(self):
        e1 = entries([Rect((0, 0), (1, 1)), Rect((0, 0), (1, 1))])
        e2 = entries([Rect((0, 0), (1, 1))])
        out = [(a.ref, b.ref) for a, b, _c in nested_loop_pairs(e1, e2)]
        assert out == [(0, 0), (1, 0)]


class TestSweepInSpatialJoin:
    def test_same_pairs_as_nested_loop(self):
        a = make_items(200, seed=5)
        b = make_items(200, seed=6)
        t1, t2 = build_rstar(a), build_rstar(b)
        nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
        ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
        assert sorted(nl.pairs) == sorted(ps.pairs) == \
            sorted(naive_join(a, b))

    def test_fewer_comparisons(self):
        a = make_items(400, seed=7)
        b = make_items(400, seed=8)
        t1, t2 = build_rstar(a, max_entries=16), \
            build_rstar(b, max_entries=16)
        nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
        ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
        assert ps.comparisons < nl.comparisons

    def test_na_unchanged(self):
        # The sweep changes the order pairs are found in, not which node
        # pairs qualify — total ReadPage count is identical.
        a = make_items(300, seed=9)
        b = make_items(300, seed=10)
        t1, t2 = build_rstar(a), build_rstar(b)
        nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
        ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
        assert ps.na_total == nl.na_total

    def test_unknown_enumeration_rejected(self):
        t = build_rstar(make_items(10, seed=11))
        with pytest.raises(ValueError, match="pair_enumeration"):
            spatial_join(t, t, pair_enumeration="quantum")

    def test_vectorized_sweep_identical_to_plane_sweep(self):
        a = make_items(250, seed=12)
        b = make_items(250, seed=13)
        t1, t2 = build_rstar(a), build_rstar(b)
        ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
        vs = spatial_join(t1, t2, pair_enumeration="vectorized-sweep")
        assert vs.pairs == ps.pairs
        assert vs.stats.as_dict() == ps.stats.as_dict()


# Degenerate tie machinery for the slack regressions: coordinates from
# a tiny discrete pool, so draws collide on exact lower bounds and
# collapse to zero extent constantly.
def _tied_rect():
    coord = st.integers(0, 4).map(lambda k: k / 4.0)
    size = st.integers(0, 1).map(lambda k: k / 4.0)

    def build(args):
        (x, y), (w, h) = args
        return Rect((x, y), (min(x + w, 1.0), min(y + h, 1.0)))
    return st.tuples(st.tuples(coord, coord),
                     st.tuples(size, size)).map(build)


_tied_entries = st.lists(_tied_rect(), min_size=0, max_size=40).map(
    lambda rs: [Entry(r, i) for i, r in enumerate(rs)])

_tied_items = st.lists(_tied_rect(), min_size=0, max_size=40).map(
    lambda rs: [(r, i) for i, r in enumerate(rs)])

_slacks = st.sampled_from([0.0, 0.125, 0.25, 0.5])


class TestSweepSlackRegressions:
    """Tie handling for degenerate rectangles sharing a lower bound.

    The sweep used to drop qualifying ``WithinDistance`` pairs whose
    rectangles do not overlap on the sweep axis (zero-width rectangles
    a positive distance apart being the sharpest case); predicates now
    declare the axis slack the sweep must apply.  These regressions pin
    the fix and the scalar/batch agreement over duplicate/degenerate
    inputs.
    """

    @SLOW
    @given(_tied_entries, _tied_entries, _slacks)
    def test_batch_matches_scalar_on_degenerate_ties(self, e1, e2,
                                                     slack):
        scalar = [(a.ref, b.ref, c)
                  for a, b, c in sweep_pairs(e1, e2, slack=slack)]
        batch = [(a.ref, b.ref, c)
                 for a, b, c in sweep_pairs_batch(e1, e2, slack=slack)]
        assert batch == scalar           # order and set, not just set

    @SLOW
    @given(_tied_entries, _tied_entries, _slacks)
    def test_slack_widens_monotonically(self, e1, e2, slack):
        base = {(a.ref, b.ref) for a, b, _c in sweep_pairs(e1, e2)}
        widened = {(a.ref, b.ref)
                   for a, b, _c in sweep_pairs(e1, e2, slack=slack)}
        assert base <= widened

    @SLOW
    @given(_tied_items, _tied_items,
           st.sampled_from([0.0, 0.2, 0.35]))
    def test_distance_join_agrees_across_enumerations(self, items1,
                                                      items2, d):
        pred = WithinDistance(d)
        t1, t2 = build_rstar(items1), build_rstar(items2)
        expected = sorted(naive_join(items1, items2, predicate=pred))
        for enum in PAIR_ENUMERATIONS:
            got = spatial_join(t1, t2, predicate=pred,
                               pair_enumeration=enum)
            assert sorted(got.pairs) == expected, enum

    def test_degenerate_gap_pair_not_dropped(self):
        # The named failure: two zero-extent rectangles 0.25 apart on
        # the sweep axis qualify under WithinDistance(0.25) but never
        # overlap on any axis — without slack every sweep enumeration
        # silently dropped the pair.
        items1 = [(Rect((0.25, 0.25), (0.25, 0.25)), 0)]
        items2 = [(Rect((0.5, 0.25), (0.5, 0.25)), 0)]
        pred = WithinDistance(0.25)
        for enum in PAIR_ENUMERATIONS:
            result = spatial_join(build_rstar(items1),
                                  build_rstar(items2), predicate=pred,
                                  pair_enumeration=enum)
            assert list(result.pairs) == [(0, 0)], enum

    def test_shared_lower_bound_zero_width_ties(self):
        # Several zero-width rectangles on one shared lower bound: the
        # scalar and batch sweeps must agree on emission order, and the
        # distance join must pair them all.
        p = (0.5, 0.0)
        e1 = [Entry(Rect(p, p), i) for i in range(3)]
        e2 = [Entry(Rect(p, (0.5, 1.0)), i) for i in range(3)]
        for slack in (0.0, 0.1):
            scalar = [(a.ref, b.ref)
                      for a, b, _c in sweep_pairs(e1, e2, slack=slack)]
            batch = [(a.ref, b.ref)
                     for a, b, _c in sweep_pairs_batch(e1, e2,
                                                       slack=slack)]
            assert batch == scalar
            assert len(scalar) == 9
