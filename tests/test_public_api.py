"""The documented public surface is the actual public surface.

Every ``repro.*`` package declares an explicit ``__all__``; every name
in it resolves; the top-level list is sorted and matches the export
table in ``docs/api.md`` exactly.
"""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

PACKAGES = ["repro"] + sorted(
    f"repro.{m.name}"
    for m in pkgutil.iter_modules(repro.__path__)
    if m.ispkg or m.name in ("cli",))


@pytest.mark.parametrize("modname", PACKAGES)
def test_package_declares_all(modname):
    mod = importlib.import_module(modname)
    assert hasattr(mod, "__all__"), f"{modname} has no __all__"
    assert len(mod.__all__) == len(set(mod.__all__)), (
        f"{modname}.__all__ has duplicates")


@pytest.mark.parametrize("modname", PACKAGES)
def test_all_entries_resolve(modname):
    mod = importlib.import_module(modname)
    for name in mod.__all__:
        assert getattr(mod, name, None) is not None, (
            f"{modname}.__all__ lists {name!r} but it does not resolve")


@pytest.mark.parametrize("modname", PACKAGES)
def test_all_entries_sorted(modname):
    mod = importlib.import_module(modname)
    public = [n for n in mod.__all__ if not n.startswith("_")]
    assert public == sorted(public), (
        f"{modname}.__all__ is not sorted: {public}")


def test_dunder_version_listed_last():
    assert repro.__all__[-1] == "__version__"


def test_star_import_honours_all():
    ns = {}
    exec("from repro import *", ns)
    imported = {n for n in ns if not n.startswith("__")}
    assert imported == {n for n in repro.__all__
                        if not n.startswith("__")}


#: The arena / execution-config API introduced by the shared-memory
#: parallel-join work: pinned here explicitly so the exports cannot be
#: dropped without this file noticing, independent of docs/api.md.
ARENA_API = {
    "repro": ["ArenaHandle", "ArenaTreeView", "ExecutionConfig",
              "TreeArena", "arena_from_shared_memory",
              "arena_to_shared_memory", "share_tree"],
    "repro.exec": ["ASSIGNMENT_STRATEGIES", "DEFAULT_WORKER_TIMEOUT",
                   "EXECUTION_MODES", "ExecutionConfig",
                   "ON_WORKER_CRASH", "PAIR_ENUMERATIONS",
                   "TRAVERSALS"],
    "repro.join": ["LevelBatchState", "TRAVERSALS",
                   "supports_level_batch", "tree_arena"],
    "repro.geometry": ["ArenaHandle", "SharedArena", "TreeArena",
                       "arena_from_shared_memory",
                       "arena_to_shared_memory"],
    "repro.rtree": ["ArenaTreeHandle", "ArenaTreeView", "share_tree"],
}


@pytest.mark.parametrize("modname, names",
                         sorted(ARENA_API.items()))
def test_arena_api_is_exported(modname, names):
    mod = importlib.import_module(modname)
    for name in names:
        assert name in mod.__all__, (
            f"{modname}.__all__ lost {name!r}")
        assert getattr(mod, name, None) is not None


#: The partition-based (PBSM) join strategy: engine entrypoint, the
#: strategy knob's value set, and the optimizer's plan/costing pair.
PBSM_API = {
    "repro.exec": ["STRATEGIES"],
    "repro.join": ["STRATEGIES", "partition_spatial_join"],
    "repro.optimizer": ["PBSMJoinPlan", "make_pbsm_join"],
}


@pytest.mark.parametrize("modname, names",
                         sorted(PBSM_API.items()))
def test_pbsm_api_is_exported(modname, names):
    mod = importlib.import_module(modname)
    for name in names:
        assert name in mod.__all__, (
            f"{modname}.__all__ lost {name!r}")
        assert getattr(mod, name, None) is not None


def test_docs_list_every_top_level_export():
    text = Path(__file__).resolve().parent.parent.joinpath(
        "docs", "api.md").read_text()
    match = re.search(r"## Top-level exports\n(.*?)(?:\n## |\Z)", text,
                      re.DOTALL)
    assert match, "docs/api.md lost its '## Top-level exports' section"
    documented = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`",
                                match.group(1)))
    documented -= {"repro"}          # prose mentions of the package
    actual = set(repro.__all__) - {"__version__"}
    missing = actual - documented
    stale = documented - actual - {"import", "__all__"}
    assert not missing, f"docs/api.md export table is missing {missing}"
    assert not stale, f"docs/api.md export table lists stale {stale}"
