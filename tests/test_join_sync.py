"""The SJ synchronized-traversal join: correctness and accounting."""

import pytest

from repro.geometry import Rect
from repro.join import (R1, R2, SpatialJoin, WithinDistance, naive_join,
                        spatial_join)
from repro.rtree import RStarTree
from repro.storage import LRUBuffer, NoBuffer, PathBuffer

from .conftest import build_rstar, make_items


def normalized(pairs):
    return sorted(pairs)


class TestCorrectness:
    def test_matches_naive_join(self):
        a = make_items(150, seed=1)
        b = make_items(150, seed=2)
        result = spatial_join(build_rstar(a), build_rstar(b))
        assert normalized(result.pairs) == normalized(naive_join(a, b))

    def test_matches_naive_in_1d(self):
        a = make_items(120, ndim=1, seed=3)
        b = make_items(100, ndim=1, seed=4)
        t1 = build_rstar(a, ndim=1)
        t2 = build_rstar(b, ndim=1)
        result = spatial_join(t1, t2)
        assert normalized(result.pairs) == normalized(naive_join(a, b))

    def test_self_join(self):
        a = make_items(80, seed=5)
        tree = build_rstar(a)
        result = spatial_join(tree, tree)
        assert normalized(result.pairs) == normalized(naive_join(a, a))

    def test_different_heights(self):
        small = make_items(30, seed=6)        # height 2 at M = 8
        large = make_items(400, seed=7)       # height 3+
        t_small = build_rstar(small)
        t_large = build_rstar(large)
        assert t_small.height < t_large.height
        r1 = spatial_join(t_small, t_large)
        assert normalized(r1.pairs) == normalized(naive_join(small, large))
        r2 = spatial_join(t_large, t_small)
        assert normalized(r2.pairs) == normalized(naive_join(large, small))

    def test_height_one_tree(self):
        tiny = make_items(4, seed=8)
        big = make_items(200, seed=9)
        t_tiny = build_rstar(tiny)
        assert t_tiny.height == 1
        t_big = build_rstar(big)
        result = spatial_join(t_tiny, t_big)
        assert normalized(result.pairs) == normalized(naive_join(tiny, big))

    def test_empty_tree(self):
        empty = RStarTree(2, 8)
        other = build_rstar(make_items(50, seed=10))
        result = spatial_join(empty, other)
        assert result.pairs == []
        assert result.na_total == 0

    def test_distance_join(self):
        a = make_items(60, seed=11)
        b = make_items(60, seed=12)
        pred = WithinDistance(0.05)
        result = spatial_join(build_rstar(a), build_rstar(b),
                              predicate=pred)
        assert normalized(result.pairs) == \
            normalized(naive_join(a, b, predicate=pred))

    def test_dimensionality_mismatch_rejected(self):
        t1 = RStarTree(1, 8)
        t2 = RStarTree(2, 8)
        with pytest.raises(ValueError):
            spatial_join(t1, t2)

    def test_collect_pairs_false_counts_only(self):
        a = make_items(80, seed=13)
        b = make_items(80, seed=14)
        t1, t2 = build_rstar(a), build_rstar(b)
        full = spatial_join(t1, t2)
        counted = spatial_join(t1, t2, collect_pairs=False)
        assert counted.pairs == []
        assert counted.pair_count == len(full.pairs)
        assert counted.selectivity_count == full.selectivity_count
        assert counted.na_total == full.na_total


class TestAccounting:
    def _trees(self):
        a = make_items(250, seed=21)
        b = make_items(250, seed=22)
        return build_rstar(a), build_rstar(b)

    def test_da_le_na(self):
        t1, t2 = self._trees()
        result = spatial_join(t1, t2)
        assert result.da_total <= result.na_total
        assert result.da(R1) <= result.na(R1)
        assert result.da(R2) <= result.na(R2)

    def test_no_buffer_makes_da_equal_na(self):
        t1, t2 = self._trees()
        result = spatial_join(t1, t2, buffer=NoBuffer())
        assert result.da_total == result.na_total

    def test_na_identical_across_buffers(self):
        # NA counts ReadPage calls; the buffer policy must not change the
        # traversal, only which reads hit the buffer.
        t1, t2 = self._trees()
        na = {spatial_join(t1, t2, buffer=buf).na_total
              for buf in (NoBuffer(), PathBuffer(), LRUBuffer(16))}
        assert len(na) == 1

    def test_na_symmetric_in_roles(self):
        # Eq. 7's symmetry claim, measured: swapping R1/R2 keeps NA.
        t1, t2 = self._trees()
        assert spatial_join(t1, t2).na_total == \
            spatial_join(t2, t1).na_total

    def test_da_asymmetric_in_roles(self):
        # DA is role-sensitive (path buffer favours the outer tree);
        # with different cardinalities the two assignments differ.
        small = build_rstar(make_items(100, seed=23))
        large = build_rstar(make_items(500, seed=24))
        ab = spatial_join(small, large).da_total
        ba = spatial_join(large, small).da_total
        assert ab != ba

    def test_na_counts_pairs_twice(self):
        # Every recursion reads one node of each tree: per-tree NA match.
        t1, t2 = self._trees()
        result = spatial_join(t1, t2)
        if t1.height == t2.height:
            assert result.na(R1) == result.na(R2)

    def test_roots_never_charged(self):
        t1, t2 = self._trees()
        result = spatial_join(t1, t2)
        assert result.stats.na(R1, level=t1.height) == 0
        assert result.stats.na(R2, level=t2.height) == 0

    def test_levels_charged_match_tree_heights(self):
        t1, t2 = self._trees()
        result = spatial_join(t1, t2)
        assert max(result.stats.levels(R1)) == t1.height - 1
        assert min(result.stats.levels(R1)) == 1

    def test_lru_buffer_beats_path_buffer(self):
        # A large LRU pool dominates the one-path-per-tree policy.
        t1, t2 = self._trees()
        da_path = spatial_join(t1, t2, buffer=PathBuffer()).da_total
        da_lru = spatial_join(t1, t2,
                              buffer=LRUBuffer(10_000)).da_total
        assert da_lru <= da_path

    def test_rerun_is_deterministic(self):
        t1, t2 = self._trees()
        join = SpatialJoin(t1, t2)
        first = join.run()
        second = join.run()
        assert first.na_total == second.na_total
        assert first.da_total == second.da_total
        assert normalized(first.pairs) == normalized(second.pairs)

    def test_comparisons_counted(self):
        t1, t2 = self._trees()
        result = spatial_join(t1, t2)
        assert result.comparisons >= result.pair_count
