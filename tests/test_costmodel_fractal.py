"""The FK94 fractal-dimension platform."""

import pytest

from repro.costmodel import (AnalyticalTreeParams, FractalTreeParams,
                             correlation_dimension, join_da_total,
                             join_na_total, range_query_na)
from repro.datasets import (clustered_rectangles, diagonal_rectangles,
                            uniform_rectangles)
from repro.join import spatial_join

from .conftest import build_rstar


class TestCorrelationDimension:
    def test_uniform_2d_close_to_two(self):
        ds = uniform_rectangles(3000, 0.5, 2, seed=1)
        assert correlation_dimension(ds) == pytest.approx(2.0, abs=0.15)

    def test_uniform_1d_close_to_one(self):
        ds = uniform_rectangles(3000, 0.5, 1, seed=2)
        assert correlation_dimension(ds) == pytest.approx(1.0, abs=0.1)

    def test_line_embedded_in_2d_close_to_one(self):
        # Points on the diagonal of the unit square: a 1-dimensional
        # set living in 2-d space — the canonical fractal-dimension
        # demonstration.
        ds = diagonal_rectangles(3000, 0.05, 2, width=0.002, seed=3)
        assert correlation_dimension(ds) == pytest.approx(1.0, abs=0.25)

    def test_clustered_below_uniform(self):
        flat = uniform_rectangles(3000, 0.5, 2, seed=4)
        skew = clustered_rectangles(3000, 0.5, 2, clusters=4,
                                    spread=0.03, seed=4)
        assert correlation_dimension(skew) < correlation_dimension(flat)

    def test_clamped_to_embedding_dimension(self):
        ds = uniform_rectangles(500, 0.5, 2, seed=5)
        assert 0.0 < correlation_dimension(ds) <= 2.0

    def test_invalid_args(self):
        ds = uniform_rectangles(100, 0.5, 2, seed=6)
        with pytest.raises(ValueError):
            correlation_dimension(ds, min_exponent=3, max_exponent=3)
        with pytest.raises(ValueError):
            correlation_dimension(uniform_rectangles(1, 0.0, 2, seed=7))

    def test_deterministic(self):
        ds = uniform_rectangles(500, 0.5, 2, seed=8)
        assert correlation_dimension(ds) == correlation_dimension(ds)


class TestFractalTreeParams:
    def _params(self, n=8000, d2=2.0, m=50, ndim=2):
        return FractalTreeParams(n, d2, m, ndim)

    def test_protocol_fields(self):
        p = self._params()
        assert p.height == 3
        assert p.nodes_at(1) == pytest.approx(8000 / 33.5)
        assert len(p.extents_at(1)) == 2

    def test_extent_formula(self):
        p = self._params(n=8000, d2=2.0)
        per_node = 0.67 * 50
        expected = (per_node / 8000) ** 0.5
        assert p.extents_at(1)[0] == pytest.approx(expected)

    def test_lower_dimension_means_smaller_nodes(self):
        # A box capturing the fraction f of a D2-dimensional point set
        # has side f^(1/D2); for f < 1 a LOWER D2 gives a SMALLER side —
        # points concentrated on a lower-dimensional subset sit closer
        # together, so the same count packs into less extent.
        flat = self._params(d2=2.0)
        line = self._params(d2=1.0)
        assert line.extents_at(1)[0] < flat.extents_at(1)[0]

    def test_object_extent_correction(self):
        bare = FractalTreeParams(8000, 2.0, 50, 2)
        fat = FractalTreeParams(8000, 2.0, 50, 2, object_extent=0.05)
        assert fat.extents_at(1)[0] == pytest.approx(
            bare.extents_at(1)[0] + 0.05)

    def test_root_is_workspace(self):
        p = self._params()
        assert p.extents_at(p.height) == (1.0, 1.0)

    def test_from_dataset(self):
        ds = uniform_rectangles(1000, 0.5, 2, seed=9)
        p = FractalTreeParams.from_dataset(ds, 24)
        assert p.n_objects == 1000
        assert 1.5 < p.fractal_dimension <= 2.0
        assert p.object_extent == pytest.approx((0.5 / 1000) ** 0.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FractalTreeParams(-1, 2.0, 50, 2)
        with pytest.raises(ValueError):
            FractalTreeParams(10, 0.0, 50, 2)
        with pytest.raises(ValueError):
            FractalTreeParams(10, 2.0, 50, 2, object_extent=-1.0)
        p = self._params()
        with pytest.raises(ValueError):
            p.nodes_at(0)
        with pytest.raises(ValueError):
            p.extents_at(0)


class TestFractalPlatformEndToEnd:
    def test_drops_into_range_and_join_formulas(self):
        p = FractalTreeParams(8000, 1.8, 50, 2, object_extent=0.01)
        assert range_query_na(p, (0.1, 0.1)) > 0
        assert join_na_total(p, p) > 0
        assert join_da_total(p, p) <= join_na_total(p, p)

    def test_tracks_measurement_on_uniform_data(self):
        d1 = uniform_rectangles(1500, 0.5, 2, seed=10)
        d2 = uniform_rectangles(1500, 0.5, 2, seed=11)
        t1 = build_rstar(d1.items, max_entries=16)
        t2 = build_rstar(d2.items, max_entries=16)
        measured = spatial_join(t1, t2, collect_pairs=False)
        f1 = FractalTreeParams.from_dataset(d1, 16)
        f2 = FractalTreeParams.from_dataset(d2, 16)
        predicted = join_na_total(f1, f2)
        assert predicted == pytest.approx(measured.na_total, rel=0.5)

    def test_agrees_with_ts96_on_uniform_data(self):
        # On uniform data the two platforms describe the same tree; the
        # predictions should land in the same ballpark.
        ds = uniform_rectangles(2000, 0.5, 2, seed=12)
        f = FractalTreeParams.from_dataset(ds, 24)
        a = AnalyticalTreeParams.from_dataset(ds, 24)
        ratio = join_na_total(f, f) / join_na_total(a, a)
        assert 0.5 < ratio < 2.0
