"""ClientRetryPolicy: full-jitter backoff, server hints, deadline cap.

Pure unit tests on injected clocks — no sockets, no sleeping.  The
policy replaced the client's old bare ``time.sleep(0.1)``-style
fallbacks, so its contract is pinned precisely: bounded attempts,
jitter bounded by ``min(cap, base * 2**attempt)``, the server's
``Retry-After`` hint honored as a floor (never a substitute for the
schedule), and a wall-clock deadline no sleep may overrun.
"""

import random

import pytest

from repro.exec import AdmissionRejected
from repro.serve import ClientRetryPolicy, Overloaded, ServiceDraining


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        assert seconds >= 0.0
        self.now += seconds
        self.slept.append(seconds)

    slept: list


def make_policy(**kw):
    clock = FakeClock()
    clock.slept = []
    kw.setdefault("rng", random.Random(0))
    policy = ClientRetryPolicy(clock=clock, sleep=clock.sleep, **kw)
    return policy, clock


class Flaky:
    """Fails ``n`` times with the given errors, then succeeds."""

    def __init__(self, errors):
        self.errors = list(errors)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return {"status": "complete"}


class TestBackoffSchedule:
    def test_jitter_bounded_by_exponential_ceiling(self):
        policy, _ = make_policy(base=0.1, cap=100.0)
        for attempt in range(1, 8):
            ceiling = 0.1 * (2 ** attempt)
            draws = [policy.backoff(attempt) for _ in range(200)]
            assert all(0.0 <= d <= ceiling for d in draws)
            # Full jitter actually spreads over the range — the old
            # fixed-delay behaviour would put every draw in one spot.
            assert max(draws) - min(draws) > ceiling / 4

    def test_cap_bounds_late_attempts(self):
        policy, _ = make_policy(base=1.0, cap=5.0)
        assert all(policy.backoff(attempt) <= 5.0
                   for attempt in range(1, 20) for _ in range(50))

    def test_server_hint_is_a_floor(self):
        policy, _ = make_policy(base=0.001, cap=0.002)
        # The schedule alone would sleep ~2ms; the server said 1.5s.
        assert all(policy.backoff(n, hint=1.5) >= 1.5
                   for n in range(1, 5))

    def test_deterministic_with_seeded_rng(self):
        a, _ = make_policy(rng=random.Random(42))
        b, _ = make_policy(rng=random.Random(42))
        assert [a.backoff(n) for n in range(1, 6)] == \
               [b.backoff(n) for n in range(1, 6)]


class TestCall:
    def test_retries_transients_then_succeeds(self):
        policy, clock = make_policy(max_attempts=5)
        fn = Flaky([Overloaded("queue-full", 0.05),
                    ServiceDraining(0.1),
                    ConnectionRefusedError("daemon restarting")])
        assert policy.call(fn) == {"status": "complete"}
        assert fn.calls == 4
        assert len(clock.slept) == 3
        # Each sleep honored the hint floor where one was given.
        assert clock.slept[0] >= 0.05
        assert clock.slept[1] >= 0.1

    def test_non_retryable_raises_immediately(self):
        policy, clock = make_policy()
        fn = Flaky([AdmissionRejected("na", 10.0, 99.0)])
        with pytest.raises(AdmissionRejected):
            policy.call(fn)
        assert fn.calls == 1 and clock.slept == []

    def test_attempts_exhausted_reraises_last_error(self):
        policy, clock = make_policy(max_attempts=3)
        fn = Flaky([Overloaded("queue-full", None)] * 10)
        with pytest.raises(Overloaded):
            policy.call(fn)
        assert fn.calls == 3               # the cap counts executions
        assert len(clock.slept) == 2       # no sleep after the last

    def test_deadline_caps_total_wall_clock(self):
        policy, clock = make_policy(max_attempts=100, deadline=10.0)
        # Every retry is told to wait 4s: the third would overrun 10s.
        fn = Flaky([Overloaded("queue-full", 4.0)] * 100)
        with pytest.raises(Overloaded):
            policy.call(fn)
        assert clock.now <= 10.0
        assert fn.calls == 3               # 0s + 4s + 4s, then refuse

    def test_overloaded_without_hint_still_retries(self):
        policy, clock = make_policy(max_attempts=2, base=0.1, cap=0.2)
        fn = Flaky([Overloaded("queue-full", None)])
        assert policy.call(fn) == {"status": "complete"}
        assert len(clock.slept) == 1 and clock.slept[0] <= 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientRetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(base=0.0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(deadline=-1.0)
