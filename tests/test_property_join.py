"""Property-based tests for the join layer's newer surfaces."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.join import (WithinDistance, naive_join, parallel_spatial_join,
                        spatial_join)
from repro.rtree import RStarTree
from repro.storage import LRUBuffer, NoBuffer, PathBuffer

SLOW = settings(max_examples=20,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


def rect_strategy():
    coord = st.floats(min_value=0.0, max_value=0.9, allow_nan=False)
    size = st.floats(min_value=0.0, max_value=0.1, allow_nan=False)

    def build(args):
        (x, y), (w, h) = args
        return Rect((x, y), (min(x + w, 1.0), min(y + h, 1.0)))
    return st.tuples(st.tuples(coord, coord),
                     st.tuples(size, size)).map(build)


items_strategy = st.lists(rect_strategy(), min_size=0, max_size=80).map(
    lambda rs: [(r, i) for i, r in enumerate(rs)])


def build(items):
    tree = RStarTree(2, 6)
    for rect, oid in items:
        tree.insert(rect, oid)
    return tree


@SLOW
@given(items_strategy, items_strategy,
       st.floats(min_value=0.0, max_value=0.3))
def test_distance_join_equals_naive(items1, items2, distance):
    pred = WithinDistance(distance)
    result = spatial_join(build(items1), build(items2), predicate=pred)
    assert sorted(result.pairs) == \
        sorted(naive_join(items1, items2, predicate=pred))


@SLOW
@given(items_strategy, items_strategy,
       st.floats(min_value=0.01, max_value=0.3))
def test_distance_join_superset_of_overlap(items1, items2, distance):
    t1, t2 = build(items1), build(items2)
    overlap = set(spatial_join(t1, t2).pairs)
    within = set(spatial_join(t1, t2,
                              predicate=WithinDistance(distance)).pairs)
    assert overlap <= within


@SLOW
@given(items_strategy, items_strategy, st.integers(1, 6),
       st.sampled_from(["round-robin", "greedy"]))
def test_parallel_join_partition_invariants(items1, items2, workers,
                                            assignment):
    t1, t2 = build(items1), build(items2)
    sequential = spatial_join(t1, t2)
    result = parallel_spatial_join(t1, t2, workers,
                                   assignment=assignment)
    # Output is a partition of the sequential output: same multiset.
    assert sorted(result.pairs) == sorted(sequential.pairs)
    # Makespan bounded by total; both non-negative.
    assert 0 <= result.makespan_da <= result.total_da


@SLOW
@given(items_strategy, items_strategy)
def test_plane_sweep_equivalence(items1, items2):
    t1, t2 = build(items1), build(items2)
    nl = spatial_join(t1, t2, pair_enumeration="nested-loop")
    ps = spatial_join(t1, t2, pair_enumeration="plane-sweep")
    assert sorted(nl.pairs) == sorted(ps.pairs)
    assert nl.na_total == ps.na_total


@SLOW
@given(items_strategy, items_strategy, st.integers(0, 64))
def test_buffer_hierarchy(items1, items2, lru_size):
    # For any data: DA(no buffer) >= DA(path) and DA(no buffer) >=
    # DA(LRU k); NA identical across policies.
    t1, t2 = build(items1), build(items2)
    none = spatial_join(t1, t2, buffer=NoBuffer(), collect_pairs=False)
    path = spatial_join(t1, t2, buffer=PathBuffer(),
                        collect_pairs=False)
    lru = spatial_join(t1, t2, buffer=LRUBuffer(lru_size),
                       collect_pairs=False)
    assert none.na_total == path.na_total == lru.na_total
    assert path.da_total <= none.da_total
    assert lru.da_total <= none.da_total
