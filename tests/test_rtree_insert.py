"""Insertion behaviour of the dynamic R-tree variants."""

import pytest

from repro.geometry import Rect
from repro.rtree import GuttmanRTree, RStarTree, check, validate

from .conftest import build_guttman, build_rstar, make_items


class TestConstructorValidation:
    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            RStarTree(0, 8)

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            RStarTree(2, 1)

    def test_rejects_bad_min_fill(self):
        with pytest.raises(ValueError):
            RStarTree(2, 8, min_fill=0.9)

    def test_guttman_rejects_unknown_split(self):
        with pytest.raises(ValueError):
            GuttmanRTree(2, 8, split="magic")

    def test_min_entries_capped_at_half(self):
        tree = RStarTree(2, 10, min_fill=0.5)
        assert tree.min_entries == 5
        tree2 = RStarTree(2, 9, min_fill=0.5)
        assert tree2.min_entries <= 4


class TestBasicInsertion:
    def test_empty_tree(self):
        tree = RStarTree(2, 8)
        assert len(tree) == 0
        assert tree.height == 1

    def test_single_insert(self):
        tree = RStarTree(2, 8)
        tree.insert(Rect((0.1, 0.1), (0.2, 0.2)), 1)
        assert len(tree) == 1
        check(tree)

    def test_insert_wrong_ndim_rejected(self):
        tree = RStarTree(2, 8)
        with pytest.raises(ValueError):
            tree.insert(Rect((0.0,), (1.0,)), 1)

    def test_root_split_grows_height(self):
        tree = RStarTree(2, 4)
        for rect, oid in make_items(5, seed=1):
            tree.insert(rect, oid)
        assert tree.height == 2
        check(tree)

    def test_extend(self):
        tree = RStarTree(2, 8)
        tree.extend(make_items(20, seed=2))
        assert len(tree) == 20
        check(tree)

    def test_size_tracks_inserts(self):
        tree = RStarTree(2, 8)
        items = make_items(37, seed=3)
        for i, (rect, oid) in enumerate(items, start=1):
            tree.insert(rect, oid)
            assert len(tree) == i


@pytest.mark.parametrize("builder", [
    build_rstar,
    lambda items: build_guttman(items, split="quadratic"),
    lambda items: build_guttman(items, split="linear"),
], ids=["rstar", "guttman-quadratic", "guttman-linear"])
class TestInvariantsAcrossVariants:
    def test_structural_invariants(self, builder):
        tree = builder(make_items(300, seed=11))
        assert validate(tree) == []

    def test_all_objects_retrievable(self, builder):
        items = make_items(150, seed=12)
        tree = builder(items)
        found = sorted(tree.range_query(Rect((0, 0), (1, 1))))
        assert found == sorted(oid for _r, oid in items)

    def test_height_grows_logarithmically(self, builder):
        tree = builder(make_items(300, seed=13))
        # M = 8: 300 objects need at least ceil(log_8(300/8)) + 1 = 3
        # levels and certainly no more than 5.
        assert 3 <= tree.height <= 5

    def test_duplicate_rects_allowed(self, builder):
        rect = Rect((0.4, 0.4), (0.5, 0.5))
        tree = builder([(rect, i) for i in range(30)])
        assert sorted(tree.range_query(rect)) == list(range(30))
        assert validate(tree) == []


class TestRStarSpecific:
    def test_fill_factor_near_paper_c(self):
        tree = build_rstar(make_items(800, seed=21), max_entries=16)
        # Forced reinsertion drives utilisation to roughly 60-75%;
        # this is the basis for the model's c = 0.67.
        assert 0.55 <= tree.average_fill() <= 0.85

    def test_reinsertion_happens_once_per_level_per_insert(self):
        # Indirect: inserting clustered data into a small tree must
        # terminate (no reinsertion loop) and stay valid.
        tree = RStarTree(2, 4)
        for i in range(60):
            x = 0.5 + (i % 7) * 1e-4
            tree.insert(Rect((x, x), (x + 1e-4, x + 1e-4)), i)
        check(tree)
        assert len(tree) == 60

    def test_point_data(self):
        tree = RStarTree(2, 6)
        for i in range(50):
            p = Rect.point((i / 50.0, (i * 7 % 50) / 50.0))
            tree.insert(p, i)
        check(tree)
        assert len(tree.range_query(Rect((0, 0), (1, 1)))) == 50

    def test_one_dimensional(self):
        tree = RStarTree(1, 8)
        tree.extend(make_items(120, ndim=1, seed=5))
        check(tree)
        assert tree.ndim == 1

    def test_three_dimensional(self):
        tree = RStarTree(3, 8)
        tree.extend(make_items(120, ndim=3, seed=6))
        check(tree)
        got = sorted(tree.range_query(Rect((0, 0, 0), (1, 1, 1))))
        assert got == list(range(120))


class TestGuttmanSpecific:
    def test_linear_and_quadratic_agree_on_contents(self):
        items = make_items(100, seed=31)
        lin = build_guttman(items, split="linear")
        quad = build_guttman(items, split="quadratic")
        window = Rect((0.2, 0.2), (0.6, 0.6))
        assert sorted(lin.range_query(window)) == \
            sorted(quad.range_query(window))

    def test_split_respects_min_fill(self):
        tree = build_guttman(make_items(200, seed=32), max_entries=10)
        for node in tree.nodes():
            if node.page_id != tree.root_id:
                assert len(node.entries) >= tree.min_entries
