"""The fault injector and the fault-injecting pager wrapper."""

import pytest

from repro.reliability import (CorruptPageError, FaultInjector, FaultyPager,
                               TransientPageError)
from repro.storage import Pager


def filled_pager(n_pages: int = 20) -> Pager:
    pager = Pager()
    for i in range(n_pages):
        pager.allocate(payload=f"node-{i}")
    return pager


class TestFaultInjector:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="transient_rate"):
            FaultInjector(transient_rate=1.5)
        with pytest.raises(ValueError, match="corrupt_rate"):
            FaultInjector(corrupt_rate=-0.1)
        with pytest.raises(ValueError, match="latency"):
            FaultInjector(latency=-1.0)

    def test_zero_rates_never_fault(self):
        inj = FaultInjector(seed=1)
        for page in range(1000):
            inj.on_read(page)
        assert inj.counts.transients == 0
        assert inj.counts.corruptions == 0
        assert inj.counts.accounted_latency == 0.0

    def test_deterministic_for_equal_seed(self):
        def decisions(seed):
            inj = FaultInjector(seed=seed, transient_rate=0.3)
            out = []
            for page in range(500):
                try:
                    inj.on_read(page)
                    out.append(False)
                except TransientPageError:
                    out.append(True)
            return out

        assert decisions(42) == decisions(42)
        assert decisions(42) != decisions(43)

    def test_reset_replays_identically(self):
        inj = FaultInjector(seed=9, transient_rate=0.5)
        first = []
        for page in range(200):
            try:
                inj.on_read(page)
                first.append(False)
            except TransientPageError:
                first.append(True)
        transients = inj.counts.transients
        inj.reset()
        assert inj.counts.transients == 0
        second = []
        for page in range(200):
            try:
                inj.on_read(page)
                second.append(False)
            except TransientPageError:
                second.append(True)
        assert first == second
        assert inj.counts.transients == transients

    def test_rate_roughly_respected(self):
        inj = FaultInjector(seed=3, transient_rate=0.2)
        for page in range(5000):
            try:
                inj.on_read(page)
            except TransientPageError:
                pass
        assert 0.15 < inj.counts.transients / 5000 < 0.25

    def test_latency_accounted_not_slept(self):
        inj = FaultInjector(seed=5, latency_rate=1.0, latency=0.01)
        for page in range(10):
            inj.on_read(page)
        assert inj.counts.latency_events == 10
        assert inj.counts.accounted_latency == pytest.approx(0.1)


class TestFaultyPager:
    def test_transient_raises_then_recovers(self):
        pager = FaultyPager(filled_pager(),
                            FaultInjector(seed=7, transient_rate=0.5))
        failures = successes = 0
        for _ in range(200):
            try:
                assert pager.read(3) == "node-3"
                successes += 1
            except TransientPageError as exc:
                assert exc.page_id == 3
                failures += 1
        assert failures > 0 and successes > 0

    def test_corruption_raises_corrupt_page_error(self):
        pager = FaultyPager(filled_pager(),
                            FaultInjector(seed=7, corrupt_rate=1.0))
        with pytest.raises(CorruptPageError):
            pager.read(0)

    def test_delegates_everything_else(self):
        inner = filled_pager(2)
        pager = FaultyPager(inner, FaultInjector(seed=1))
        pid = pager.allocate("fresh")
        assert pager.read(pid) == "fresh"
        pager.write(pid, "rewritten")
        assert inner.read(pid) == "rewritten"
        pager.put(99, "explicit")
        assert 99 in pager
        assert len(pager) == len(inner)
        assert pager.page_size == inner.page_size
        pager.free(99)
        assert 99 not in inner

    def test_counts_reads(self):
        inj = FaultInjector(seed=2)
        pager = FaultyPager(filled_pager(), inj)
        for _ in range(7):
            pager.read(1)
        assert inj.counts.reads == 7
