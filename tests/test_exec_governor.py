"""Budgets, cancellation tokens, and the execution governor."""

import pytest

from repro.exec import (UNLIMITED, Budget, BudgetExceeded, Cancelled,
                        CancellationToken, ExecutionGovernor)
from repro.join import (PartialJoinResult, SpatialJoin,
                        index_nested_loop_join, spatial_join)
from repro.reliability import ReproError
from repro.storage import AccessStats, PathBuffer

from .conftest import build_rstar, make_items


class TestBudget:
    def test_unlimited_default(self):
        assert UNLIMITED.unlimited
        assert Budget().unlimited
        assert not Budget(max_na=10).unlimited

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(deadline=0.0)
        with pytest.raises(ValueError):
            Budget(deadline=float("inf"))
        with pytest.raises(ValueError):
            Budget(max_na=0)
        with pytest.raises(ValueError):
            Budget(max_da=-3)
        with pytest.raises(ValueError):
            Budget(max_results=True)     # bools are not counts

    def test_as_dict_round_trips_json(self):
        import json
        doc = Budget(deadline=1.5, max_na=10).as_dict()
        assert json.loads(json.dumps(doc)) == doc


class TestCancellationToken:
    def test_cancel_and_observe(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        with pytest.raises(Cancelled):
            token.raise_if_cancelled()

    def test_parent_link_propagates(self):
        parent = CancellationToken()
        child = CancellationToken(parent)
        assert not child.cancelled
        parent.cancel()
        assert child.cancelled
        assert not CancellationToken().cancelled

    def test_child_cancel_does_not_reach_parent(self):
        parent = CancellationToken()
        child = CancellationToken(parent)
        child.cancel()
        assert child.cancelled
        assert not parent.cancelled


class TestGovernorCheck:
    def test_errors_are_repro_errors(self):
        assert issubclass(BudgetExceeded, ReproError)
        assert issubclass(Cancelled, ReproError)

    def test_unlimited_never_raises(self):
        gov = ExecutionGovernor()
        stats = AccessStats()
        for _ in range(100):
            gov.check(stats, results=10**9)
        assert gov.checks == 100

    def test_na_budget(self):
        gov = ExecutionGovernor(Budget(max_na=5))
        stats = AccessStats()
        for _ in range(4):
            stats.record("R1", 1, buffer_hit=True)
        gov.check(stats)                 # 4 < 5: fine
        stats.record("R1", 1, buffer_hit=True)
        with pytest.raises(BudgetExceeded) as err:
            gov.check(stats)
        assert err.value.resource == "na"
        assert err.value.observed == 5
        assert err.value.as_dict()["error"] == "budget-exceeded"

    def test_da_budget_ignores_buffer_hits(self):
        gov = ExecutionGovernor(Budget(max_da=2))
        stats = AccessStats()
        for _ in range(10):
            stats.record("R1", 1, buffer_hit=True)   # NA only
        gov.check(stats)
        stats.record("R1", 1, buffer_hit=False)
        stats.record("R2", 2, buffer_hit=False)
        with pytest.raises(BudgetExceeded) as err:
            gov.check(stats)
        assert err.value.resource == "da"

    def test_result_budget(self):
        gov = ExecutionGovernor(Budget(max_results=3))
        with pytest.raises(BudgetExceeded) as err:
            gov.check(AccessStats(), results=3)
        assert err.value.resource == "results"

    def test_deadline_with_fake_clock(self):
        now = [0.0]
        gov = ExecutionGovernor(Budget(deadline=10.0),
                                clock=lambda: now[0])
        stats = AccessStats()
        gov.check(stats)                 # starts the clock at t=0
        now[0] = 9.9
        gov.check(stats)
        now[0] = 10.0
        with pytest.raises(BudgetExceeded) as err:
            gov.check(stats)
        assert err.value.resource == "deadline"
        assert err.value.observed == pytest.approx(10.0)

    def test_cancellation_beats_budget(self):
        gov = ExecutionGovernor(Budget(max_na=1))
        stats = AccessStats()
        stats.record("R1", 1, buffer_hit=True)
        gov.token.cancel()
        with pytest.raises(Cancelled):
            gov.check(stats)

    def test_reset_restarts_deadline(self):
        now = [0.0]
        gov = ExecutionGovernor(Budget(deadline=5.0),
                                clock=lambda: now[0])
        gov.start()
        now[0] = 100.0
        gov.reset()
        gov.start()
        gov.check(AccessStats())         # elapsed is 0 again

    def test_spawn_shares_budget_links_token(self):
        parent = ExecutionGovernor(Budget(max_na=7), partial=True)
        extra = CancellationToken()
        worker = parent.spawn(extra)
        assert worker.budget is parent.budget
        assert not worker.partial        # workers always raise
        extra.cancel()
        with pytest.raises(Cancelled):
            worker.check(AccessStats())
        # The other direction: cancelling the parent token reaches a
        # freshly spawned worker too.
        worker2 = parent.spawn(CancellationToken())
        parent.token.cancel()
        with pytest.raises(Cancelled):
            worker2.check(AccessStats())

    def test_invalid_admission_mode(self):
        with pytest.raises(ValueError):
            ExecutionGovernor(admission="maybe")


class TestGovernedJoins:
    @pytest.fixture(scope="class")
    def trees(self):
        t1 = build_rstar(make_items(300, seed=11))
        t2 = build_rstar(make_items(300, seed=12))
        return t1, t2

    def test_spatial_join_raises_on_budget(self, trees):
        t1, t2 = trees
        baseline = spatial_join(t1, t2, collect_pairs=False)
        assert baseline.na_total > 10
        gov = ExecutionGovernor(Budget(max_na=10))
        with pytest.raises(BudgetExceeded):
            spatial_join(t1, t2, collect_pairs=False, governor=gov)

    def test_spatial_join_partial_mode_returns_checkpoint(self, trees):
        t1, t2 = trees
        gov = ExecutionGovernor(Budget(max_na=10), partial=True)
        result = SpatialJoin(t1, t2, PathBuffer(), governor=gov).run()
        assert isinstance(result, PartialJoinResult)
        assert not result.complete
        assert result.na_total == 10     # stopped exactly at the budget
        assert result.reason.resource == "na"
        assert result.checkpoint.stack   # frontier captured

    def test_spatial_join_cancellation(self, trees):
        t1, t2 = trees
        gov = ExecutionGovernor()
        gov.token.cancel()
        with pytest.raises(Cancelled):
            spatial_join(t1, t2, governor=gov)

    def test_result_cap_counts_pairs(self, trees):
        t1, t2 = trees
        baseline = spatial_join(t1, t2, collect_pairs=False)
        cap = baseline.pair_count // 2
        assert cap > 0
        gov = ExecutionGovernor(Budget(max_results=cap), partial=True)
        result = SpatialJoin(t1, t2, PathBuffer(), governor=gov).run()
        assert isinstance(result, PartialJoinResult)
        assert result.pair_count >= cap
        assert result.reason.resource == "results"

    def test_nested_loop_join_observes_governor(self, trees):
        t1, _t2 = trees
        outer = make_items(100, seed=13)
        gov = ExecutionGovernor(Budget(max_na=5))
        with pytest.raises(BudgetExceeded):
            index_nested_loop_join(t1, outer, governor=gov)

    def test_nested_loop_join_refuses_partial(self, trees):
        t1, _t2 = trees
        gov = ExecutionGovernor(Budget(max_na=5), partial=True)
        with pytest.raises(ValueError):
            index_nested_loop_join(t1, make_items(10, seed=14),
                                   governor=gov)

    def test_partial_remaining_estimates(self, trees):
        t1, t2 = trees
        gov = ExecutionGovernor(Budget(max_na=10), partial=True)
        result = SpatialJoin(t1, t2, PathBuffer(), governor=gov).run()
        assert result.remaining_na_estimate is not None
        assert result.remaining_na_estimate >= 0.0
        assert result.remaining_da_estimate >= 0.0
