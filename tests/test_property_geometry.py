"""Property-based tests for the geometric primitive."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect


def rects(ndim=2):
    """Strategy producing valid rectangles inside [0, 1]^ndim."""
    def build(draw_vals):
        lo = [min(a, b) for a, b in draw_vals]
        hi = [max(a, b) for a, b in draw_vals]
        return Rect(lo, hi)
    coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    return st.lists(st.tuples(coord, coord), min_size=ndim,
                    max_size=ndim).map(build)


@given(rects(), rects())
def test_intersects_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(rects(), rects())
def test_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains(a) and u.contains(b)


@given(rects(), rects())
def test_union_area_at_least_max(a, b):
    assert a.union(b).area() >= max(a.area(), b.area()) - 1e-12


@given(rects(), rects())
def test_intersection_consistent_with_predicate(a, b):
    inter = a.intersection(b)
    assert (inter is not None) == a.intersects(b)
    if inter is not None:
        assert a.contains(inter) and b.contains(inter)


@given(rects(), rects())
def test_intersection_area_agrees(a, b):
    inter = a.intersection(b)
    expected = inter.area() if inter is not None else 0.0
    assert abs(a.intersection_area(b) - expected) < 1e-12


@given(rects(), rects())
def test_enlargement_non_negative(a, b):
    assert a.enlargement(b) >= -1e-12


@given(rects(), rects())
def test_min_distance_zero_iff_intersecting(a, b):
    d = a.min_distance(b)
    if a.intersects(b):
        assert d == 0.0
    else:
        assert d > 0.0


@given(rects(), rects(), rects())
def test_min_distance_triangleish(a, b, c):
    # Not a true metric, but distance to a union can't exceed distance
    # to either constituent.
    u = b.union(c)
    assert a.min_distance(u) <= a.min_distance(b) + 1e-12


@given(rects(), st.floats(min_value=0.0, max_value=0.5))
def test_inflate_contains_original(r, amount):
    assert r.inflate(amount).contains(r)


@given(rects(), st.floats(min_value=0.0, max_value=0.5))
def test_inflate_grows_extents(r, amount):
    inflated = r.inflate(amount)
    for before, after in zip(r.extents, inflated.extents):
        assert after >= before - 1e-12


@given(rects())
def test_contains_implies_intersects(r):
    assert r.intersects(r)
    assert r.contains(r)


@given(rects(ndim=1), rects(ndim=1))
def test_one_dimensional_behaviour(a, b):
    # Interval logic: intersects iff neither is strictly to one side.
    expected = not (a.hi[0] < b.lo[0] or b.hi[0] < a.lo[0])
    assert a.intersects(b) == expected
