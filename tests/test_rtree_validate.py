"""The invariant validator must catch each class of corruption."""

import pytest

from repro.geometry import Rect
from repro.rtree import Entry, InvalidTreeError, check, validate

from .conftest import build_rstar, make_items


def corruptible_tree():
    return build_rstar(make_items(120, seed=42), max_entries=6)


class TestValidator:
    def test_clean_tree_passes(self):
        tree = corruptible_tree()
        assert validate(tree) == []
        check(tree)  # must not raise

    def test_detects_stale_parent_mbr(self):
        tree = corruptible_tree()
        root = tree.root()
        child = tree.node(root.entries[0].ref)
        # Shrink a grandchild rect without propagating upward.
        grand = tree.node(child.entries[0].ref)
        grand.entries[0] = Entry(
            Rect((0.0, 0.0), (1e-9, 1e-9)), grand.entries[0].ref)
        problems = validate(tree)
        assert any("stale" in p for p in problems)

    def test_detects_overflow(self):
        tree = corruptible_tree()
        leaf = tree.nodes_at_level(1)[0]
        filler = Rect((0.4, 0.4), (0.41, 0.41))
        while len(leaf.entries) <= tree.max_entries:
            leaf.entries.append(Entry(filler, 777))
        assert any("overflows" in p for p in validate(tree))

    def test_detects_underfull(self):
        tree = corruptible_tree()
        leaf = tree.nodes_at_level(1)[0]
        del leaf.entries[1:]
        assert any("underfull" in p for p in validate(tree))

    def test_detects_size_mismatch(self):
        tree = corruptible_tree()
        tree.size += 5
        assert any("size mismatch" in p for p in validate(tree))

    def test_detects_height_mismatch(self):
        tree = corruptible_tree()
        tree.height += 1
        assert any("height" in p for p in validate(tree))

    def test_detects_missing_page(self):
        tree = corruptible_tree()
        victim = tree.root().entries[0].ref
        tree.pager.free(victim)
        assert any("missing page" in p for p in validate(tree))

    def test_detects_orphan_pages(self):
        tree = corruptible_tree()
        tree.pager.allocate("orphan")
        assert any("reachable" in p for p in validate(tree))

    def test_check_raises(self):
        tree = corruptible_tree()
        tree.size += 1
        with pytest.raises(InvalidTreeError):
            check(tree)
