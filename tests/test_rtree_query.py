"""Range queries, metered counting, and tree introspection."""

import pytest

from repro.geometry import Rect
from repro.storage import AccessStats, MeteredReader, NoBuffer, PathBuffer

from .conftest import build_rstar, make_items


def brute_force(items, window):
    return sorted(oid for rect, oid in items if rect.intersects(window))


class TestRangeQuery:
    @pytest.mark.parametrize("window", [
        Rect((0.0, 0.0), (1.0, 1.0)),
        Rect((0.25, 0.25), (0.5, 0.5)),
        Rect((0.9, 0.9), (1.0, 1.0)),
        Rect.point((0.5, 0.5)),
    ])
    def test_matches_brute_force(self, items_200, rstar_200, window):
        assert sorted(rstar_200.range_query(window)) == \
            brute_force(items_200, window)

    def test_empty_window_region(self, rstar_200):
        # A window outside all data (data sides are 0.02, placed in
        # [0, 0.98]) can still be empty only if nothing overlaps; use a
        # degenerate corner point with nothing there.
        result = rstar_200.range_query(Rect.point((0.999999, 0.999999)))
        assert isinstance(result, list)

    def test_count_range(self, items_200, rstar_200):
        window = Rect((0.1, 0.1), (0.4, 0.4))
        assert rstar_200.count_range(window) == \
            len(brute_force(items_200, window))

    def test_window_ndim_checked(self, rstar_200):
        with pytest.raises(ValueError):
            rstar_200.range_query(Rect((0.0,), (1.0,)))

    def test_query_on_empty_tree(self):
        from repro.rtree import RStarTree
        tree = RStarTree(2, 8)
        assert tree.range_query(Rect((0, 0), (1, 1))) == []


class TestMeteredRangeQuery:
    def test_root_never_charged(self, rstar_200):
        stats = AccessStats()
        reader = MeteredReader(rstar_200.pager, "T", stats, NoBuffer())
        rstar_200.range_query(Rect((0.4, 0.4), (0.6, 0.6)), reader=reader)
        assert stats.na("T", level=rstar_200.height) == 0

    def test_full_window_visits_everything_below_root(self, rstar_200):
        stats = AccessStats()
        reader = MeteredReader(rstar_200.pager, "T", stats, NoBuffer())
        rstar_200.range_query(Rect((0, 0), (1, 1)), reader=reader)
        non_root = sum(1 for n in rstar_200.nodes()
                       if n.page_id != rstar_200.root_id)
        assert stats.na("T") == non_root

    def test_small_window_visits_few_nodes(self, rstar_200):
        stats = AccessStats()
        reader = MeteredReader(rstar_200.pager, "T", stats, NoBuffer())
        rstar_200.range_query(Rect.point((0.5, 0.5)), reader=reader)
        non_root = sum(1 for n in rstar_200.nodes()
                       if n.page_id != rstar_200.root_id)
        assert 0 < stats.na("T") < non_root

    def test_path_buffer_cannot_help_single_query(self, rstar_200):
        # Within one depth-first range query every visited node is new,
        # so DA == NA even with a path buffer.
        stats = AccessStats()
        reader = MeteredReader(rstar_200.pager, "T", stats, PathBuffer())
        rstar_200.range_query(Rect((0.2, 0.2), (0.3, 0.3)), reader=reader)
        assert stats.da("T") == stats.na("T")

    def test_repeated_query_hits_path_buffer(self, rstar_200):
        stats = AccessStats()
        reader = MeteredReader(rstar_200.pager, "T", stats, PathBuffer())
        window = Rect.point((0.5, 0.5))
        rstar_200.range_query(window, reader=reader)
        first_na, first_da = stats.na("T"), stats.da("T")
        rstar_200.range_query(window, reader=reader)
        assert stats.na("T") == 2 * first_na
        assert stats.da("T") < 2 * first_da


class TestIntrospection:
    def test_nodes_iteration_covers_pager(self, rstar_200):
        assert sum(1 for _ in rstar_200.nodes()) == len(rstar_200.pager)

    def test_nodes_at_level(self, rstar_200):
        leaves = rstar_200.nodes_at_level(1)
        assert all(n.is_leaf for n in leaves)
        assert sum(len(n.entries) for n in leaves) == 200

    def test_level_stats_counts(self, rstar_200):
        stats = rstar_200.level_stats()
        assert stats[1].count == len(rstar_200.nodes_at_level(1))
        assert stats[rstar_200.height].count == 1

    def test_level_stats_density_positive(self, rstar_200):
        stats = rstar_200.level_stats()
        assert stats[1].density > 0

    def test_leaf_entries(self, items_200, rstar_200):
        got = sorted(e.ref for e in rstar_200.leaf_entries())
        assert got == sorted(oid for _r, oid in items_200)

    def test_average_fill_bounds(self, rstar_200):
        assert 0.0 < rstar_200.average_fill() <= 1.0

    def test_apply_to_leaves(self, rstar_200):
        seen = []
        rstar_200.apply_to_leaves(lambda n: seen.append(n.page_id))
        assert len(seen) == len(rstar_200.nodes_at_level(1))
