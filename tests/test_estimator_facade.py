"""The `Estimator` facade: one entry point, same numbers as the free
functions it consolidated."""

import pytest

from repro.costmodel import (AnalyticalTreeParams, MeasuredTreeParams,
                             join_da_by_tree, join_da_total,
                             join_na_total, join_selectivity_fraction,
                             join_selectivity_pairs, range_query_na)
from repro.datasets import uniform_rectangles
from repro.estimator import Estimator, ParamCache
from repro.reliability import ModelDomainError
from .conftest import build_rstar, make_items


@pytest.fixture(scope="module")
def pair():
    p1 = AnalyticalTreeParams(40_000, 0.5, 50, 2)
    p2 = AnalyticalTreeParams(20_000, 0.3, 50, 2)
    return p1, p2


def test_facade_matches_free_functions(pair):
    p1, p2 = pair
    est = Estimator(p1, p2)
    assert est.na() == join_na_total(p1, p2)
    assert est.da() == join_da_total(p1, p2)
    assert est.da_by_tree() == join_da_by_tree(p1, p2)
    assert est.selectivity() == join_selectivity_pairs(p1, p2)
    assert est.selectivity(0.05) == join_selectivity_pairs(
        p1, p2, distance=0.05)
    assert est.selectivity_fraction() == join_selectivity_fraction(p1, p2)
    assert est.range_na((0.1, 0.1)) == range_query_na(p1, (0.1, 0.1))


def test_facade_paper_mode(pair):
    p1, p2 = pair
    est = Estimator(p1, p2, mixed_height_mode="paper")
    assert est.da() == join_da_total(p1, p2, mixed_height_mode="paper")


def test_breakdown_totals_match(pair):
    p1, p2 = pair
    est = Estimator(p1, p2)
    bd = est.breakdown()
    assert bd.na_total == est.na()
    assert bd.da_total == est.da()
    assert bd.da_by_tree == est.da_by_tree()
    assert len(bd.na_stages) == len(bd.da_stages) > 0


def test_estimate_bundles_everything(pair):
    p1, p2 = pair
    est = Estimator(p1, p2)
    e = est.estimate(distance=0.01)
    assert e.na == est.na()
    assert e.da == est.da()
    assert e.da_swapped == est.swapped().da()
    assert e.selectivity == est.selectivity(0.01)
    assert (e.height_left, e.height_right) == (p1.height, p2.height)
    assert set(e.as_dict()) == {"na", "da", "da_swapped", "selectivity",
                                "height_left", "height_right"}


def test_swapped_swaps_roles(pair):
    p1, p2 = pair
    est = Estimator(p1, p2)
    sw = est.swapped()
    assert sw.left is p2 and sw.right is p1
    assert sw.da() == join_da_total(p2, p1)
    # NA is role-symmetric (Eq. 7), DA is not.
    assert sw.na() == pytest.approx(est.na(), rel=1e-12)
    assert sw.da() != est.da()


def test_from_stats_uses_cache():
    cache = ParamCache()
    est = Estimator.from_stats(10_000, 0.5, 10_000, 0.5, 50, cache=cache)
    # Identical (N, D, M, ndim, fill): one derivation, shared object.
    assert est.left is est.right
    assert cache.misses == 1 and cache.hits == 1


def test_from_datasets():
    ds1 = uniform_rectangles(500, 0.4, 2, seed=11)
    ds2 = uniform_rectangles(700, 0.6, 2, seed=12)
    est = Estimator.from_datasets(ds1, ds2, 24)
    ref = Estimator(AnalyticalTreeParams.from_dataset(ds1, 24),
                    AnalyticalTreeParams.from_dataset(ds2, 24))
    assert est.na() == ref.na()
    assert est.da() == ref.da()


def test_from_trees_no_page_reads():
    t1 = build_rstar(make_items(300, seed=1), max_entries=8)
    t2 = build_rstar(make_items(400, seed=2), max_entries=8)
    est = Estimator.from_trees(t1, t2)
    assert est.left.n_objects == 300
    assert est.right.n_objects == 400
    assert est.na() > 0.0


def test_measured_params_accepted(pair):
    tree = build_rstar(make_items(300, seed=3), max_entries=8)
    mp = MeasuredTreeParams(tree)
    est = Estimator(mp, pair[0])
    assert est.na() == join_na_total(mp, pair[0])


def test_range_only_estimator(pair):
    est = Estimator(pair[0])
    assert est.range_na((0.2, 0.2)) == range_query_na(pair[0], (0.2, 0.2))
    with pytest.raises(ValueError, match="without a right side"):
        est.na()


def test_constructor_validation(pair):
    p1, p2 = pair
    with pytest.raises(ValueError, match="mixed_height_mode"):
        Estimator(p1, p2, mixed_height_mode="bogus")
    p3 = AnalyticalTreeParams(1000, 0.5, 50, 3)
    with pytest.raises(ValueError, match="dimensionality"):
        Estimator(p1, p3)
    with pytest.raises(ValueError, match="window has"):
        Estimator(p1).range_na((0.1, 0.1, 0.1))
    with pytest.raises(ValueError, match="distance"):
        Estimator(p1, p2).selectivity(-0.1)


def test_domain_errors_still_raised():
    empty = AnalyticalTreeParams(0, 0.0, 50, 2)
    other = AnalyticalTreeParams(1000, 0.5, 50, 2)
    with pytest.raises(ModelDomainError):
        Estimator(empty, other).na()
