"""Admission control: refusing a join before a single page is read."""

import pytest

from repro.exec import (AdmissionRejected, Budget, BudgetExceeded,
                        ExecutionGovernor, evaluate_admission,
                        predict_join_cost)
from repro.join import SpatialJoin
from repro.storage import PathBuffer

from .conftest import build_rstar, make_items


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(400, seed=41))
    t2 = build_rstar(make_items(400, seed=42))
    return t1, t2


class SpyBuffer(PathBuffer):
    """A buffer that counts how often the join touches it."""

    def __init__(self):
        super().__init__()
        self.touches = 0

    def access(self, tree, level, node_id):
        self.touches += 1
        return super().access(tree, level, node_id)


class TestEvaluateAdmission:
    def test_fits(self):
        decision = evaluate_admission(Budget(max_na=1000), 100.0, 50.0)
        assert decision.allowed
        assert decision.resource is None
        assert decision.predicted_na == 100.0

    def test_na_violation(self):
        decision = evaluate_admission(Budget(max_na=10), 100.0, 5.0)
        assert not decision.allowed
        assert decision.resource == "na"
        assert decision.limit == 10

    def test_da_violation(self):
        decision = evaluate_admission(Budget(max_da=10), 5.0, 100.0)
        assert not decision.allowed
        assert decision.resource == "da"

    def test_na_checked_before_da(self):
        decision = evaluate_admission(Budget(max_na=1, max_da=1),
                                      100.0, 100.0)
        assert decision.resource == "na"

    def test_exact_prediction_is_admitted(self):
        # Admission is strictly `predicted > limit`: a query predicted
        # to use exactly its budget may run.
        assert evaluate_admission(Budget(max_na=100), 100.0, None).allowed

    def test_unknown_prediction_is_admitted(self):
        assert evaluate_admission(Budget(max_na=1), None, None).allowed

    def test_as_dict_is_json_shaped(self):
        import json
        doc = evaluate_admission(Budget(max_na=10), 100.0, 5.0).as_dict()
        assert json.loads(json.dumps(doc)) == doc


class TestPredictJoinCost:
    def test_predictions_positive_and_ordered(self, trees):
        t1, t2 = trees
        predicted = predict_join_cost(t1, t2)
        assert predicted is not None
        na, da = predicted
        assert na > 0 and da > 0

    def test_prediction_tracks_measurement(self, trees):
        # The model should land within a factor of 2 of the measured NA
        # on this well-behaved uniform workload — enough for admission
        # decisions to be meaningful.
        t1, t2 = trees
        na_pred, _ = predict_join_cost(t1, t2)
        measured = SpatialJoin(t1, t2, PathBuffer()).run(
            collect_pairs=False)
        assert 0.5 < na_pred / measured.na_total < 2.0


class TestAdmissionBeforeExecution:
    def test_reject_without_touching_a_page(self, trees):
        t1, t2 = trees
        buffer = SpyBuffer()
        gov = ExecutionGovernor(Budget(max_na=1), admission="reject")
        sj = SpatialJoin(t1, t2, buffer, governor=gov)
        with pytest.raises(AdmissionRejected) as err:
            sj.run()
        # The acceptance bar: rejection happens with ZERO metered
        # accesses — no buffer touch, no stats entry anywhere.
        assert buffer.touches == 0
        doc = err.value.as_dict()
        assert doc["error"] == "admission-rejected"
        assert doc["predicted"] is True
        assert doc["resource"] == "na"

    def test_admission_rejected_is_budget_exceeded(self):
        assert issubclass(AdmissionRejected, BudgetExceeded)

    def test_warn_mode_runs_and_records_decision(self, trees):
        t1, t2 = trees
        gov = ExecutionGovernor(Budget(max_na=10**9), admission="warn")
        result = SpatialJoin(t1, t2, PathBuffer(), governor=gov).run(
            collect_pairs=False)
        assert result.complete
        assert gov.last_admission is not None
        assert gov.last_admission.allowed

    def test_warn_mode_never_raises_at_admission(self, trees):
        # An impossible budget in "warn" mode records the refusal but
        # lets the run start; the runtime check stops it instead.
        t1, t2 = trees
        gov = ExecutionGovernor(Budget(max_na=1), admission="warn")
        with pytest.raises(BudgetExceeded) as err:
            SpatialJoin(t1, t2, PathBuffer(), governor=gov).run()
        assert not isinstance(err.value, AdmissionRejected)
        assert gov.last_admission is not None
        assert not gov.last_admission.allowed

    def test_off_mode_skips_prediction(self, trees):
        t1, t2 = trees
        gov = ExecutionGovernor(Budget(max_na=10**9), admission="off")
        decision = gov.admit(t1, t2)
        assert decision.allowed
        assert decision.predicted_na is None
