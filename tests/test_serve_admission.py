"""Admission and backpressure math: O(1), typed, cost-derived."""

import pytest

from repro.exec import AdmissionRejected, Budget, tree_params
from repro.serve import CostAdmission, ThroughputClock

from .conftest import build_rstar, make_items


@pytest.fixture(scope="module")
def params():
    t1 = build_rstar(make_items(300, seed=81), max_entries=8)
    t2 = build_rstar(make_items(250, seed=82), max_entries=8)
    return tree_params(t1), tree_params(t2)


class TestCostAdmission:
    def test_predict_matches_estimator(self, params):
        from repro.estimator import Estimator
        p1, p2 = params
        predicted = CostAdmission.predict(p1, p2)
        est = Estimator(p1, p2)
        assert predicted == (est.na(), est.da())

    def test_admit_under_ceiling(self, params):
        p1, p2 = params
        adm = CostAdmission(max_predicted_na=10**9)
        na, da = adm.admit(p1, p2)
        assert na > 0 and da > 0

    def test_server_ceiling_rejects_with_estimate(self, params):
        p1, p2 = params
        predicted_na, _ = CostAdmission.predict(p1, p2)
        adm = CostAdmission(max_predicted_na=int(predicted_na) - 1)
        with pytest.raises(AdmissionRejected) as err:
            adm.admit(p1, p2)
        doc = err.value.as_dict()
        assert doc["error"] == "admission-rejected"
        assert doc["predicted"] is True
        assert doc["observed"] == pytest.approx(predicted_na)

    def test_request_budget_rejects(self, params):
        p1, p2 = params
        adm = CostAdmission()             # no server ceiling
        with pytest.raises(AdmissionRejected):
            adm.admit(p1, p2, Budget(max_na=1))

    def test_request_budget_da_axis(self, params):
        p1, p2 = params
        _, predicted_da = CostAdmission.predict(p1, p2)
        adm = CostAdmission()
        with pytest.raises(AdmissionRejected) as err:
            adm.admit(p1, p2, Budget(max_da=int(predicted_da) - 1))
        assert err.value.resource == "da"

    def test_unlimited_budget_admits(self, params):
        p1, p2 = params
        assert CostAdmission().admit(p1, p2, Budget()) is not None

    def test_admission_is_o1_no_tree_access(self):
        # The O(N) part (leaf density sum) happens at registration;
        # admission over the cached parameters must not touch a tree.
        t1 = build_rstar(make_items(150, seed=83), max_entries=8)
        t2 = build_rstar(make_items(140, seed=84), max_entries=8)
        p1, p2 = tree_params(t1), tree_params(t2)

        def boom(*a, **kw):
            raise AssertionError("admission touched the tree")

        t1.leaf_entries = boom
        t2.leaf_entries = boom
        t1.pager.read = boom
        t2.pager.read = boom
        assert CostAdmission().admit(p1, p2, Budget(max_na=10**9))


class TestThroughputClock:
    def test_first_sample_replaces_prior(self):
        clock = ThroughputClock(initial_rate=1000.0)
        clock.observe(na=500, seconds=1.0)
        assert clock.na_per_second == pytest.approx(500.0)

    def test_ewma_converges(self):
        clock = ThroughputClock(alpha=0.5)
        for _ in range(20):
            clock.observe(na=100, seconds=1.0)
        assert clock.na_per_second == pytest.approx(100.0, rel=0.01)

    def test_ignores_degenerate_samples(self):
        clock = ThroughputClock()
        before = clock.na_per_second
        clock.observe(na=0, seconds=1.0)
        clock.observe(na=10, seconds=0.0)
        assert clock.na_per_second == before

    def test_seconds_for_is_linear(self):
        clock = ThroughputClock()
        clock.observe(na=1000, seconds=1.0)
        assert clock.seconds_for(2000) == pytest.approx(2.0)
        assert clock.seconds_for(0) == 0.0


class TestRetryAfter:
    def test_derived_from_soonest_finishing_join(self):
        adm = CostAdmission()
        adm.clock.observe(na=1000, seconds=1.0)    # 1000 NA/s
        # Two running joins: 5000 NA total, one 4s in; 2000 NA, fresh.
        hint = adm.retry_after([(5000.0, 4.0), (2000.0, 0.0)])
        # Remaining: 5s-4s = 1s vs 2s-0s = 2s -> soonest is 1s.
        assert hint == pytest.approx(1.0, abs=0.01)

    def test_overdue_join_clamps_to_floor(self):
        adm = CostAdmission()
        adm.clock.observe(na=1000, seconds=1.0)
        assert adm.retry_after([(1000.0, 99.0)]) == pytest.approx(
            0.1, abs=0.01)

    def test_empty_running_set_uses_floor(self):
        assert CostAdmission().retry_after([]) > 0

    def test_clamped_to_ceiling(self):
        adm = CostAdmission()
        adm.clock.observe(na=10, seconds=10.0)     # 1 NA/s, very slow
        assert adm.retry_after([(10**9, 0.0)]) == 60.0
