"""The experiment registry."""

import pytest

from repro.experiments import SMOKE_SCALE, experiment_ids, run_experiment


class TestRegistry:
    def test_ids_cover_all_figures(self):
        ids = experiment_ids()
        for fig in ("fig5a", "fig5b", "fig6a", "fig6b", "fig7a",
                    "fig7b"):
            assert fig in ids

    @pytest.mark.parametrize("exp_id", ["fig6a", "fig6b", "fig7a",
                                        "fig7b"])
    def test_analytic_experiments_run(self, exp_id):
        table = run_experiment(exp_id)
        assert "20K" in table and "80K" in table
        assert "paper scale" in table

    def test_measured_experiment_at_smoke_scale(self):
        table = run_experiment("fig5a", scale="smoke")
        assert "exper(NA)" in table
        assert "smoke scale" in table

    def test_scale_object_accepted(self):
        table = run_experiment("fig5a", scale=SMOKE_SCALE)
        assert "exper(NA)" in table

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            run_experiment("fig5a", scale="galactic")

    def test_fig6b_matches_golden_values(self):
        table = run_experiment("fig6b")
        # Values pinned against the golden-regression suite.
        assert "4445" in table and "17789" in table

    def test_cli_experiment_command(self, capsys):
        from repro.cli import main
        assert main(["experiment", "fig7a"]) == 0
        out = capsys.readouterr().out
        assert "NR2=20K" in out
