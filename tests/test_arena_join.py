"""Joins over the whole-tree arena: bit-identity and segment hygiene.

The arena is a pure transport/layout change, so every observable of a
join must be unchanged by it: pairs, NA, DA, checkpoint bytes — whether
the kernels read node caches, arena slices, an attached
:class:`ArenaTreeView`, or shared-memory worker processes.  The second
half of the file pins the ``/dev/shm`` hygiene guarantees: no segment
survives a join, a failed join, or a closed lease.
"""

import os
import random

import pytest

from repro.exec import Budget, ExecutionConfig, ExecutionGovernor
from repro.exec.checkpoint import _canonical
from repro.geometry import Rect
from repro.join import (PartialJoinResult, SpatialJoin,
                        parallel_spatial_join, spatial_join)
from repro.rtree import RStarTree, share_tree
from repro.rtree.arena_view import ArenaTreeView

SHM_DIR = "/dev/shm"


def _segments() -> list[str]:
    if not os.path.isdir(SHM_DIR):       # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir(SHM_DIR)
            if f.startswith("repro_arena_")]


def _tree(n: int, seed: int, side: float = 0.04) -> RStarTree:
    rng = random.Random(seed)
    tree = RStarTree(2, 8)
    for oid in range(n):
        lo = (rng.random() * 0.95, rng.random() * 0.95)
        tree.insert(Rect(lo, (lo[0] + side, lo[1] + side)), oid)
    return tree


@pytest.fixture()
def trees():
    return _tree(300, seed=5), _tree(300, seed=6)


def test_arena_backed_kernels_match_nested_loop(trees):
    t1, t2 = trees
    baseline = spatial_join(
        t1, t2, config=ExecutionConfig(pair_enumeration="nested-loop"))
    t1.arena()
    t2.arena()
    for enum in ("vectorized", "vectorized-sweep"):
        got = spatial_join(
            t1, t2, config=ExecutionConfig(pair_enumeration=enum))
        assert sorted(got.pairs) == sorted(baseline.pairs)
        assert got.na_total == baseline.na_total
        if enum == "vectorized":         # sweeps shift buffer hits
            assert got.da_total == baseline.da_total


def test_arena_view_join_equals_tree_join(trees):
    t1, t2 = trees
    want = spatial_join(t1, t2)
    h1, lease1 = share_tree(t1)
    h2, lease2 = share_tree(t2)
    try:
        v1, v2 = h1.attach(), h2.attach()
        assert isinstance(v1, ArenaTreeView)
        assert len(v1) == len(t1) and v1.root().level == t1.root().level
        got = spatial_join(v1, v2, config=ExecutionConfig(
            pair_enumeration="vectorized"))
        assert sorted(got.pairs) == sorted(want.pairs)
        assert got.na_total == want.na_total
        assert got.da_total == want.da_total
    finally:
        lease1.close()
        lease2.close()
    assert _segments() == []


@pytest.mark.parametrize("shared_memory", [True, False])
def test_process_join_matches_serial(trees, shared_memory):
    t1, t2 = trees
    cfg = ExecutionConfig(workers=2, pair_enumeration="vectorized")
    serial = parallel_spatial_join(t1, t2, config=cfg)
    procs = parallel_spatial_join(
        t1, t2, config=cfg.with_options(mode="processes",
                                        shared_memory=shared_memory))
    assert sorted(procs.pairs) == sorted(serial.pairs)
    assert [s.as_dict() for s in procs.worker_stats] == \
        [s.as_dict() for s in serial.worker_stats]
    assert _segments() == []


def test_process_join_cleans_segments_on_failure(trees):
    t1, t2 = trees
    governor = ExecutionGovernor(Budget(max_na=1))
    with pytest.raises(Exception):
        parallel_spatial_join(
            t1, t2, governor=governor,
            config=ExecutionConfig(mode="processes", workers=2,
                                   pair_enumeration="vectorized"))
    assert _segments() == []


def test_closed_lease_is_idempotent_and_unlinks(trees):
    t1, _ = trees
    handle, lease = share_tree(t1)
    assert any(handle.arena.segment == s for s in _segments())
    lease.close()
    lease.close()                        # second close is a no-op
    assert _segments() == []
    with pytest.raises(FileNotFoundError):
        handle.attach()


def test_checkpoint_bytes_identical_on_arena_backed_trees(trees):
    t1, t2 = trees

    def first_checkpoint():
        gov = ExecutionGovernor(Budget(max_na=40), partial=True)
        result = SpatialJoin(t1, t2, governor=gov).run()
        assert isinstance(result, PartialJoinResult)
        return _canonical(result.checkpoint.to_dict())

    plain = first_checkpoint()
    t1.arena()
    t2.arena()
    assert first_checkpoint() == plain


def test_pickled_tree_sheds_arena_state(trees):
    import pickle
    t1, _ = trees
    t1.arena()
    clone = pickle.loads(pickle.dumps(t1))
    assert clone._arena is None
    assert len(clone) == len(t1)
    clone.arena()                        # rebuilds fine on the copy
    assert sorted(spatial_join(clone, t1).pairs) == \
        sorted(spatial_join(t1, t1).pairs)
