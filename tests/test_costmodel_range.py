"""Eq. 1: range-query cost model, and the intsect helper."""

import pytest

from repro.costmodel import (AnalyticalTreeParams, MeasuredTreeParams,
                             intsect, range_query_na,
                             range_query_selectivity)
from repro.datasets import uniform_rectangles
from repro.geometry import Rect
from repro.storage import AccessStats, MeteredReader, NoBuffer

from .conftest import build_rstar


class TestIntsect:
    def test_hand_computed(self):
        # 100 rects of extent 0.1 probed with a 0.2 window:
        # 100 * (0.1 + 0.2) = 30 in 1-d.
        assert intsect(100, (0.1,), (0.2,)) == pytest.approx(30.0)

    def test_two_dims_multiply(self):
        assert intsect(100, (0.1, 0.1), (0.2, 0.3)) == \
            pytest.approx(100 * 0.3 * 0.4)

    def test_clamped_at_certainty(self):
        # s + q > 1 cannot make a rectangle more than certain to hit.
        assert intsect(50, (0.9,), (0.9,)) == pytest.approx(50.0)

    def test_point_query(self):
        # A point query degenerates to coverage = density reasoning.
        assert intsect(200, (0.05,), (0.0,)) == pytest.approx(10.0)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            intsect(10, (0.1,), (0.1, 0.1))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            intsect(10, (-0.1,), (0.1,))


class TestRangeQueryNA:
    def test_sums_levels_below_root(self):
        p = AnalyticalTreeParams(8000, 0.5, 50, 2)
        q = (0.1, 0.1)
        expected = sum(
            intsect(p.nodes_at(j), p.extents_at(j), q)
            for j in range(1, p.height))
        assert range_query_na(p, q) == pytest.approx(expected)

    def test_height_one_tree_costs_nothing(self):
        p = AnalyticalTreeParams(10, 0.1, 50, 2)
        assert p.height == 1
        assert range_query_na(p, (0.5, 0.5)) == 0.0

    def test_monotone_in_window(self):
        p = AnalyticalTreeParams(8000, 0.5, 50, 2)
        costs = [range_query_na(p, (q, q)) for q in (0.0, 0.1, 0.3, 0.7)]
        assert costs == sorted(costs)

    def test_monotone_in_cardinality(self):
        costs = [range_query_na(
            AnalyticalTreeParams(n, 0.5, 50, 2), (0.1, 0.1))
            for n in (1000, 10000, 100000)]
        assert costs == sorted(costs)

    def test_window_dim_checked(self):
        p = AnalyticalTreeParams(1000, 0.5, 50, 2)
        with pytest.raises(ValueError):
            range_query_na(p, (0.1,))

    def test_against_measured_traversal(self):
        # Average Eq. 1 error over many windows should be modest —
        # this is TS96's validated claim, smoke-checked at small scale.
        ds = uniform_rectangles(1500, 0.5, 2, seed=1)
        tree = build_rstar(ds.items, max_entries=16)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        q = (0.2, 0.2)
        measured = []
        for i in range(25):
            x = (i * 7 % 25) / 25 * 0.8
            y = (i * 11 % 25) / 25 * 0.8
            stats = AccessStats()
            reader = MeteredReader(tree.pager, "T", stats, NoBuffer())
            tree.range_query(Rect((x, y), (x + q[0], y + q[1])),
                             reader=reader)
            measured.append(stats.na("T"))
        avg_measured = sum(measured) / len(measured)
        predicted = range_query_na(p, q)
        assert predicted == pytest.approx(avg_measured, rel=0.25)

    def test_measured_params_tighten_prediction(self):
        ds = uniform_rectangles(1500, 0.5, 2, seed=2)
        tree = build_rstar(ds.items, max_entries=16)
        pm = MeasuredTreeParams(tree)
        pa = AnalyticalTreeParams.from_dataset(ds, 16)
        # Both callable through the same interface.
        q = (0.15, 0.15)
        assert range_query_na(pm, q) > 0
        assert range_query_na(pa, q) > 0


class TestRangeSelectivity:
    def test_formula(self):
        assert range_query_selectivity(1000, (0.02, 0.02),
                                       (0.1, 0.1)) == \
            pytest.approx(1000 * 0.12 * 0.12)

    def test_against_measured_counts(self):
        ds = uniform_rectangles(2000, 0.5, 2, seed=3)
        tree = build_rstar(ds.items, max_entries=16)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        q = (0.25, 0.25)
        counts = []
        for i in range(16):
            x = (i % 4) / 4 * 0.75
            y = (i // 4) / 4 * 0.75
            counts.append(tree.count_range(
                Rect((x, y), (x + q[0], y + q[1]))))
        avg = sum(counts) / len(counts)
        predicted = range_query_selectivity(
            p.n_objects, p.average_object_extents(), q)
        assert predicted == pytest.approx(avg, rel=0.2)
