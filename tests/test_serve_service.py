"""JoinService behaviour: admission, queueing, quotas, degradation, drain.

Everything here drives the transport-agnostic core directly; the HTTP
mapping has its own suite (``test_serve_http.py``).
"""

import threading
import time

import pytest

from repro.exec import AdmissionRejected, Cancelled
from repro.join import SpatialJoin
from repro.reliability import MalformedFileError
from repro.serve import (JoinService, Overloaded, QuotaExceeded,
                         ServeConfig, ServiceDraining, UnknownTree,
                         decode_resume_token)
from repro.storage import LRUBuffer, PathBuffer

from .conftest import build_rstar, make_items


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(300, seed=91), max_entries=8)
    t2 = build_rstar(make_items(260, seed=92), max_entries=8)
    return t1, t2


@pytest.fixture(scope="module")
def direct(trees):
    t1, t2 = trees
    return SpatialJoin(t1, t2, PathBuffer()).run()


def make_service(trees, **config_kw):
    svc = JoinService(ServeConfig(**config_kw))
    svc.register_tree("a", trees[0])
    svc.register_tree("b", trees[1])
    return svc


class _SlowGate:
    """Monkeypatch helper: makes the next _run block until released."""

    def __init__(self, service, monkeypatch):
        self.started = threading.Event()
        self.release = threading.Event()
        original = service._run

        def gated(req, reg1, reg2, checkpoint, token, join_id):
            self.started.set()
            assert self.release.wait(30), "test never released the gate"
            return original(req, reg1, reg2, checkpoint, token, join_id)

        monkeypatch.setattr(service, "_run", gated)


class TestBitIdentical:
    """A served join equals a direct SpatialJoin run, bit for bit."""

    def test_counters_and_pairs(self, trees, direct):
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b",
                            "collect_pairs": True})
        assert resp["status"] == "complete"
        assert resp["na"] == direct.na_total
        assert resp["da"] == direct.da_total
        assert resp["na_by_tree"] == {"R1": direct.na("R1"),
                                      "R2": direct.na("R2")}
        assert resp["da_by_tree"] == {"R1": direct.da("R1"),
                                      "R2": direct.da("R2")}
        assert resp["pair_count"] == direct.pair_count
        assert sorted(map(tuple, resp["pairs"])) == sorted(direct.pairs)
        assert resp["comparisons"] == direct.comparisons

    def test_lru_buffer_spec_respected(self, trees):
        t1, t2 = trees
        expect = SpatialJoin(t1, t2, LRUBuffer(8)).run(
            collect_pairs=False)
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b",
                            "buffer": "lru:8"})
        assert resp["na"] == expect.na_total
        assert resp["da"] == expect.da_total

    def test_level_batch_traversal_matches_direct(self, trees, direct):
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b",
                            "collect_pairs": True,
                            "traversal": "level-batch"})
        assert resp["status"] == "complete"
        assert resp["na"] == direct.na_total
        assert resp["da"] == direct.da_total
        assert resp["pair_count"] == direct.pair_count
        assert sorted(map(tuple, resp["pairs"])) == sorted(direct.pairs)

    def test_response_carries_cost_estimate(self, trees):
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b"})
        assert resp["predicted_na"] > 0
        assert resp["predicted_da"] > 0


class TestAdmission:
    def test_server_ceiling_rejects_before_any_read(self, trees):
        svc = make_service(trees, max_predicted_na=1)
        reads = []
        for reg in ("a", "b"):
            tree = svc._lookup(reg).tree
            original = tree.pager.read
            tree.pager.read = lambda pid, _o=original: (
                reads.append(pid), _o(pid))[1]
        try:
            with pytest.raises(AdmissionRejected) as err:
                svc.execute({"tree1": "a", "tree2": "b"})
        finally:
            for reg in ("a", "b"):
                tree = svc._lookup(reg).tree
                del tree.pager.read          # restore the class method
        assert reads == []
        doc = err.value.as_dict()
        assert doc["predicted"] is True and doc["observed"] > 1
        snap = svc.metrics_snapshot()
        assert snap["counters"]["serve.rejected.admission"] == 1
        assert "serve.admitted" not in snap["counters"]

    def test_request_budget_checked_when_asked(self, trees):
        svc = make_service(trees)
        with pytest.raises(AdmissionRejected):
            svc.execute({"tree1": "a", "tree2": "b", "max_na": 1,
                         "admission": "reject"})

    def test_admission_off_skips_request_budget_only(self, trees):
        # The join still runs (and trips its NA budget mid-flight),
        # returning a partial result rather than a rejection.
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b", "max_na": 10,
                            "admission": "off"})
        assert resp["status"] == "partial"
        assert resp["reason"]["resource"] == "na"

    def test_unknown_tree(self, trees):
        svc = make_service(trees)
        with pytest.raises(UnknownTree):
            svc.execute({"tree1": "a", "tree2": "nope"})

    @pytest.mark.parametrize("bad", [
        {"tree2": "b"},
        {"tree1": "a", "tree2": "b", "bogus": 1},
        {"tree1": "a", "tree2": "b", "pair_enumeration": "wat"},
        {"tree1": "a", "tree2": "b", "traversal": "wat"},
        {"tree1": "a", "tree2": "b", "workers": 0},
        {"tree1": "a", "tree2": "b", "buffer": "hash:9"},
        {"tree1": "a", "tree2": "b", "buffer": "garbage"},
        {"tree1": "a", "tree2": "b", "buffer": "lru:abc"},
        {"tree1": "a", "tree2": "b", "buffer": "lru:0"},
        {"tree1": "a", "tree2": "b", "buffer": 7},
        {"tree1": "a", "tree2": "b", "admission": "warn"},
        {"tree1": "a", "tree2": "b", "workers": 2,
         "resume_token": "x"},
    ])
    def test_malformed_requests(self, trees, bad):
        svc = make_service(trees)
        with pytest.raises(ValueError):
            svc.execute(bad)

    def test_malformed_buffer_specs_consume_no_slot(self, trees):
        # Regression: bad buffer specs used to raise only after the
        # concurrency slot was held, leaking the _running entry; with
        # max_concurrency such requests the daemon shed everything.
        svc = make_service(trees, max_concurrency=1, queue_limit=0)
        for bad in ("garbage", "lru:abc", "lru:0"):
            with pytest.raises(ValueError):
                svc.execute({"tree1": "a", "tree2": "b", "buffer": bad})
        assert svc._running == {}
        resp = svc.execute({"tree1": "a", "tree2": "b"})
        assert resp["status"] == "complete"

    def test_bad_resume_token_is_typed(self, trees):
        svc = make_service(trees)
        with pytest.raises(MalformedFileError):
            svc.execute({"tree1": "a", "tree2": "b",
                         "resume_token": "garbage"})


class TestDeadlineAndResume:
    def test_deadline_yields_token_then_resume_completes(self, trees,
                                                         direct):
        svc = make_service(trees)
        first = svc.execute({"tree1": "a", "tree2": "b",
                             "deadline": 1e-6})
        assert first["status"] == "partial"
        assert first["reason"]["resource"] == "deadline"
        assert first["remaining_na_estimate"] is not None
        assert first["retry_after"] > 0
        decode_resume_token(first["resume_token"])   # valid checkpoint
        final = svc.execute({"tree1": "a", "tree2": "b",
                             "resume_token": first["resume_token"]})
        # Resumed counters are cumulative: the finished execution's
        # NA/DA equal the uninterrupted run's exactly.
        assert final["status"] == "complete"
        assert final["na"] == direct.na_total
        assert final["da"] == direct.da_total
        assert final["pair_count"] == direct.pair_count
        snap = svc.metrics_snapshot()
        assert snap["counters"]["serve.partial"] == 1
        assert snap["counters"]["serve.resumed"] == 1

    def test_default_deadline_applies(self, trees):
        svc = make_service(trees, default_deadline=1e-6)
        resp = svc.execute({"tree1": "a", "tree2": "b"})
        assert resp["status"] == "partial"

    def test_cancellation_yields_partial(self, trees, monkeypatch):
        svc = make_service(trees)
        gate = _SlowGate(svc, monkeypatch)
        box = {}

        def run():
            box["resp"] = svc.execute({"tree1": "a", "tree2": "b"})

        worker = threading.Thread(target=run)
        worker.start()
        assert gate.started.wait(10)
        join_id = next(iter(svc._running))
        assert svc.cancel(join_id)
        assert not svc.cancel("j999")
        gate.release.set()
        worker.join(30)
        assert box["resp"]["status"] == "partial"
        assert box["resp"]["reason"] == {"error": "cancelled"}
        assert "resume_token" in box["resp"]


class TestBackpressure:
    def test_queue_full_sheds_with_cost_hint(self, trees, monkeypatch):
        svc = make_service(trees, max_concurrency=1, queue_limit=0)
        gate = _SlowGate(svc, monkeypatch)
        worker = threading.Thread(
            target=svc.execute, args=({"tree1": "a", "tree2": "b"},))
        worker.start()
        assert gate.started.wait(10)
        try:
            with pytest.raises(Overloaded) as err:
                svc.execute({"tree1": "a", "tree2": "b"})
        finally:
            gate.release.set()
            worker.join(30)
        assert err.value.reason == "queue-full"
        doc = err.value.as_dict()
        assert doc["retry_after"] > 0
        assert doc["predicted_na"] > 0     # the shed request's estimate
        snap = svc.metrics_snapshot()
        assert snap["counters"]["serve.shed.queue"] == 1

    def test_queued_request_gets_the_freed_slot(self, trees, direct,
                                                monkeypatch):
        svc = make_service(trees, max_concurrency=1, queue_limit=1)
        gate = _SlowGate(svc, monkeypatch)
        results = []
        first = threading.Thread(
            target=lambda: results.append(
                svc.execute({"tree1": "a", "tree2": "b"})))
        first.start()
        assert gate.started.wait(10)
        gate.release.set()              # both pass the gate afterwards
        second = threading.Thread(
            target=lambda: results.append(
                svc.execute({"tree1": "a", "tree2": "b"})))
        second.start()
        first.join(30)
        second.join(30)
        assert len(results) == 2
        assert all(r["na"] == direct.na_total for r in results)

    def test_queue_wait_timeout(self, trees, monkeypatch):
        svc = make_service(trees, max_concurrency=1, queue_limit=1,
                           queue_wait_limit=0.05)
        gate = _SlowGate(svc, monkeypatch)
        worker = threading.Thread(
            target=svc.execute, args=({"tree1": "a", "tree2": "b"},))
        worker.start()
        assert gate.started.wait(10)
        try:
            with pytest.raises(Overloaded) as err:
                svc.execute({"tree1": "a", "tree2": "b"})
        finally:
            gate.release.set()
            worker.join(30)
        assert err.value.reason == "queue-timeout"

    def test_queue_wait_deadline_is_absolute(self, trees, monkeypatch):
        # Regression: each Condition wakeup used to restart a fresh
        # queue_wait_limit window, so a waiter that kept losing the
        # slot race could wait unboundedly.  Wake the waiter far more
        # often than the window and check it still times out on
        # schedule — and that serve.queued counts requests, not
        # wakeups.
        svc = make_service(trees, max_concurrency=1, queue_limit=1,
                           queue_wait_limit=0.3)
        gate = _SlowGate(svc, monkeypatch)
        worker = threading.Thread(
            target=svc.execute, args=({"tree1": "a", "tree2": "b"},))
        worker.start()
        assert gate.started.wait(10)
        stop = threading.Event()

        def chatter():
            while not stop.is_set():
                with svc._cond:
                    svc._cond.notify_all()
                time.sleep(0.02)

        noisy = threading.Thread(target=chatter)
        noisy.start()
        begin = time.monotonic()
        try:
            with pytest.raises(Overloaded) as err:
                svc.execute({"tree1": "a", "tree2": "b"})
            elapsed = time.monotonic() - begin
        finally:
            stop.set()
            noisy.join(10)
            gate.release.set()
            worker.join(30)
        assert err.value.reason == "queue-timeout"
        assert elapsed < 5.0
        snap = svc.metrics_snapshot()
        assert snap["counters"]["serve.queued"] == 1

    def test_tenant_quota_sheds(self, trees):
        t1, t2 = trees
        footprint = t1.height + t2.height      # path-buffer pages
        svc = make_service(trees,
                           tenant_quotas={"small": footprint - 1})
        with pytest.raises(QuotaExceeded) as err:
            svc.execute({"tree1": "a", "tree2": "b",
                         "tenant": "small"})
        assert err.value.retry_after is not None
        assert svc.pool.held() == 0            # nothing leaked
        # An unconstrained tenant still runs, and pages drain after.
        resp = svc.execute({"tree1": "a", "tree2": "b", "tenant": "big"})
        assert resp["status"] == "complete"
        assert svc.pool.held() == 0

    def test_none_buffer_holds_no_pages(self, trees):
        svc = make_service(trees, tenant_quotas={"t": 1})
        resp = svc.execute({"tree1": "a", "tree2": "b", "tenant": "t",
                            "buffer": "none"})
        assert resp["status"] == "complete"


class TestDegradation:
    def test_small_tree_processes_request_runs_serial(self, trees,
                                                      direct):
        svc = make_service(trees, serial_threshold=10**6)
        resp = svc.execute({"tree1": "a", "tree2": "b", "workers": 4,
                            "mode": "processes"})
        assert resp["degraded"] == "serial-small-tree"
        assert resp["status"] == "complete"
        assert resp["na"] == direct.na_total     # the serial engine ran
        snap = svc.metrics_snapshot()
        assert snap["counters"]["serve.degraded.small_tree"] == 1
        # The generic counter aggregates every degradation reason.
        assert snap["counters"]["serve.degraded"] == 1

    def test_degraded_field_always_present(self, trees):
        # Graceful degradation must be observable, not silent: every
        # response carries the field (None = ran as requested) and the
        # generic serve.degraded counter only moves on real fallbacks.
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b"})
        assert resp["degraded"] is None
        assert "serve.degraded" not in \
            svc.metrics_snapshot()["counters"]

    def test_parallel_threads_above_threshold(self, trees, direct):
        svc = make_service(trees, serial_threshold=1)
        resp = svc.execute({"tree1": "a", "tree2": "b", "workers": 2,
                            "mode": "threads"})
        assert resp["status"] == "complete"
        assert resp["workers"] == 2
        assert resp["pair_count"] == direct.pair_count
        assert resp["degraded"] is None     # ran exactly as requested


class TestDrain:
    def test_idle_drain_is_clean(self, trees):
        svc = make_service(trees)
        assert svc.drain(grace=0.5) is True
        with pytest.raises(ServiceDraining):
            svc.execute({"tree1": "a", "tree2": "b"})
        assert svc.status()["status"] == "draining"

    def test_drain_waits_for_running_join(self, trees, monkeypatch):
        svc = make_service(trees)
        gate = _SlowGate(svc, monkeypatch)
        box = {}
        worker = threading.Thread(
            target=lambda: box.update(
                resp=svc.execute({"tree1": "a", "tree2": "b"})))
        worker.start()
        assert gate.started.wait(10)
        releaser = threading.Timer(0.2, gate.release.set)
        releaser.start()
        assert svc.drain(grace=10.0) is True     # finished inside grace
        worker.join(30)
        assert box["resp"]["status"] == "complete"

    def test_drain_cancels_stragglers(self, trees, monkeypatch):
        svc = make_service(trees)
        gate = _SlowGate(svc, monkeypatch)
        box = {}
        worker = threading.Thread(
            target=lambda: box.update(
                resp=svc.execute({"tree1": "a", "tree2": "b"})))
        worker.start()
        assert gate.started.wait(10)
        releaser = threading.Timer(0.5, gate.release.set)
        releaser.start()
        clean = svc.drain(grace=0.05)            # expires before release
        worker.join(30)
        assert clean is False
        # The cancelled join still surfaced a resumable partial result.
        assert box["resp"]["status"] == "partial"
        assert box["resp"]["reason"] == {"error": "cancelled"}


class TestIntrospection:
    def test_status_shape(self, trees):
        svc = make_service(trees)
        status = svc.status()
        assert status["status"] == "ok"
        assert status["trees"] == ["a", "b"]
        assert status["running"] == 0
        assert status["uptime"] >= 0

    def test_trees_listing(self, trees):
        svc = make_service(trees)
        listing = svc.trees()
        assert [t["name"] for t in listing] == ["a", "b"]
        assert all(t["priceable"] for t in listing)

    def test_metrics_gauges_refresh(self, trees):
        svc = make_service(trees)
        svc.execute({"tree1": "a", "tree2": "b"})
        snap = svc.metrics_snapshot()
        assert snap["gauges"]["serve.running"] == 0
        assert snap["gauges"]["serve.na_per_second"] > 0
        assert snap["histograms"]["serve.latency_ms"]["count"] == 1

    def test_register_tree_validates_name(self, trees):
        svc = JoinService(ServeConfig())
        with pytest.raises(ValueError):
            svc.register_tree("", trees[0])
        with pytest.raises(ValueError):
            svc.register_tree("a/b", trees[0])


class TestPBSMStrategy:
    """The partition engine through the serve request schema."""

    def test_pbsm_request_matches_direct_pairs(self, trees, direct):
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b",
                            "strategy": "pbsm", "collect_pairs": True})
        assert resp["status"] == "complete"
        assert resp["degraded"] is None
        assert sorted(map(tuple, resp["pairs"])) == \
            sorted(direct.pairs)
        # PBSM never revisits a page: NA == DA.
        assert resp["na"] == resp["da"]

    def test_unknown_strategy_rejected(self, trees):
        svc = make_service(trees)
        with pytest.raises(ValueError, match="strategy must be one of"):
            svc.execute({"tree1": "a", "tree2": "b",
                         "strategy": "grid"})

    def test_pbsm_resume_token_rejected(self, trees):
        svc = make_service(trees)
        with pytest.raises(ValueError,
                           match="incompatible with strategy 'pbsm'"):
            svc.execute({"tree1": "a", "tree2": "b",
                         "strategy": "pbsm", "resume_token": "abc"})

    def test_pbsm_partial_has_null_resume_token(self, trees):
        # A budget-tripped PBSM join yields the completed tiles but no
        # checkpoint — the response says so with an explicitly null
        # token instead of crashing the encoder.
        svc = make_service(trees)
        resp = svc.execute({"tree1": "a", "tree2": "b",
                            "strategy": "pbsm", "max_na": 5,
                            "admission": "off"})
        assert resp["status"] == "partial"
        assert resp["resume_token"] is None

    def test_durable_pbsm_degrades_without_spilling(self, trees,
                                                    tmp_path):
        svc = JoinService(ServeConfig(state_dir=str(tmp_path)))
        svc.register_tree("a", trees[0])
        svc.register_tree("b", trees[1])
        resp = svc.execute({"tree1": "a", "tree2": "b",
                            "strategy": "pbsm"})
        assert resp["status"] == "complete"
        assert resp["degraded"] == "pbsm-no-spill"
        counters = svc.metrics_snapshot()["counters"]
        assert counters["serve.degraded.pbsm_no_spill"] == 1
        assert counters["serve.degraded"] == 1
        assert "serve.journal.spills" not in counters
        svc.drain(grace=0.1)
