"""The unified ExecutionConfig API and its legacy-keyword shims.

One frozen :class:`repro.exec.ExecutionConfig` now carries every
execution knob; each entrypoint that used to take the knobs as loose
keywords (``spatial_join``, :class:`SpatialJoin`,
``parallel_spatial_join``, ``execute_plan``, the serve config) accepts
``config=`` and keeps the old keywords working behind a
``DeprecationWarning``.  These tests pin that contract: same results
either way, loud ``TypeError`` on mixing, no warnings on the new path,
and validation messages identical to the historical per-function ones.
"""

import warnings

import pytest

from repro.datasets import uniform_rectangles
from repro.exec import (ASSIGNMENT_STRATEGIES, DEFAULT_WORKER_TIMEOUT,
                        EXECUTION_MODES, ON_WORKER_CRASH,
                        PAIR_ENUMERATIONS, ExecutionConfig)
from repro.join import SpatialJoin, parallel_spatial_join, spatial_join
from repro.optimizer import (Catalog, IndexScanPlan, execute_plan,
                             make_spatial_join)
from repro.serve.config import ServeConfig

from .conftest import build_rstar


@pytest.fixture(scope="module")
def trees():
    ds1 = uniform_rectangles(300, 0.5, 2, seed=71)
    ds2 = uniform_rectangles(300, 0.5, 2, seed=72)
    return build_rstar(ds1.items, max_entries=8), \
        build_rstar(ds2.items, max_entries=8)


class TestExecutionConfig:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.mode == "serial"
        assert config.workers == 1
        assert config.pair_enumeration == "nested-loop"
        assert config.assignment == "greedy"
        assert config.on_worker_crash == "raise"
        assert config.worker_timeout == DEFAULT_WORKER_TIMEOUT
        assert config.shared_memory is True

    @pytest.mark.parametrize("kw, message", [
        ({"mode": "fibers"}, "mode must be one of"),
        ({"workers": 0}, "workers must be >= 1"),
        ({"pair_enumeration": "quantum"},
         "pair_enumeration must be one of"),
        ({"assignment": "random"}, "assignment must be one of"),
        ({"on_worker_crash": "retry"},
         "on_worker_crash must be one of"),
        ({"worker_timeout": 0.0},
         "worker_timeout must be positive (or None)"),
        ({"worker_timeout": -3.0},
         "worker_timeout must be positive (or None)"),
    ])
    def test_validation_messages(self, kw, message):
        with pytest.raises(ValueError) as err:
            ExecutionConfig(**kw)
        assert message in str(err.value)

    def test_constant_tuples(self):
        assert "nested-loop" in PAIR_ENUMERATIONS
        assert "processes" in EXECUTION_MODES
        assert "greedy" in ASSIGNMENT_STRATEGIES
        assert "serial" in ON_WORKER_CRASH

    def test_with_options_and_round_trip(self):
        config = ExecutionConfig(mode="threads", workers=3)
        bumped = config.with_options(workers=5)
        assert bumped.workers == 5 and bumped.mode == "threads"
        assert config.workers == 3               # frozen original
        doc = bumped.as_dict()
        assert ExecutionConfig.from_dict(doc) == bumped
        # from_dict tolerates extra keys being absent
        assert ExecutionConfig.from_dict(
            {"mode": "threads"}).mode == "threads"

    def test_strategy_knob(self):
        assert ExecutionConfig().strategy == "sync"
        assert ExecutionConfig(strategy="pbsm").strategy == "pbsm"
        with pytest.raises(ValueError, match="strategy must be one of"):
            ExecutionConfig(strategy="grid")
        doc = ExecutionConfig(strategy="pbsm").as_dict()
        assert doc["strategy"] == "pbsm"
        assert ExecutionConfig.from_dict(doc).strategy == "pbsm"

    def test_from_dict_rejects_unknown_keys(self):
        # A typo used to be silently dropped, running the join with
        # defaults; now it fails loudly in the historical message
        # style.
        with pytest.raises(ValueError) as err:
            ExecutionConfig.from_dict({"stratgy": "pbsm"})
        assert "unknown ExecutionConfig keys ['stratgy']" in \
            str(err.value)
        assert "expected a subset of" in str(err.value)
        with pytest.raises(ValueError, match="unknown ExecutionConfig"):
            ExecutionConfig.from_dict({"mode": "serial", "turbo": True})


class TestLegacyKeywordShims:
    def test_spatial_join_legacy_warns_and_matches(self, trees):
        t1, t2 = trees
        new = spatial_join(t1, t2, config=ExecutionConfig(
            pair_enumeration="vectorized"))
        with pytest.warns(DeprecationWarning,
                          match="pair_enumeration.*deprecated"):
            old = spatial_join(t1, t2, pair_enumeration="vectorized")
        assert sorted(old.pairs) == sorted(new.pairs)
        assert old.na_total == new.na_total
        assert old.da_total == new.da_total

    def test_spatial_join_config_path_is_warning_free(self, trees):
        t1, t2 = trees
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spatial_join(t1, t2, config=ExecutionConfig(
                pair_enumeration="vectorized"))

    def test_sjoin_class_legacy_positional(self, trees):
        t1, t2 = trees
        with pytest.warns(DeprecationWarning):
            join = SpatialJoin(t1, t2, None, None, "plane-sweep")
        assert join.pair_enumeration == "plane-sweep"
        assert join.config.pair_enumeration == "plane-sweep"

    def test_mixing_config_and_legacy_is_an_error(self, trees):
        t1, t2 = trees
        with pytest.raises(TypeError, match="both 'config' and"):
            spatial_join(t1, t2, pair_enumeration="vectorized",
                         config=ExecutionConfig())
        with pytest.raises(TypeError, match="both 'config' and"):
            parallel_spatial_join(t1, t2, 2,
                                  config=ExecutionConfig(workers=2))

    def test_parallel_join_legacy_workers_positional(self, trees):
        t1, t2 = trees
        new = parallel_spatial_join(t1, t2, config=ExecutionConfig(
            workers=3, assignment="round-robin"))
        with pytest.warns(DeprecationWarning, match="workers"):
            old = parallel_spatial_join(t1, t2, 3,
                                        assignment="round-robin")
        assert sorted(old.pairs) == sorted(new.pairs)
        assert [s.as_dict() for s in old.worker_stats] == \
            [s.as_dict() for s in new.worker_stats]

    def test_parallel_join_invalid_config_message(self, trees):
        t1, t2 = trees
        with pytest.raises(ValueError, match="workers must be >= 1"):
            parallel_spatial_join(t1, t2, 0)

    def test_execute_plan_legacy_matches_config(self):
        ds1 = uniform_rectangles(200, 0.5, 2, seed=73)
        ds2 = uniform_rectangles(200, 0.5, 2, seed=74)
        trees = {"a": build_rstar(ds1.items, max_entries=8),
                 "b": build_rstar(ds2.items, max_entries=8)}
        catalog = Catalog(max_entries=8)
        catalog.register_dataset("a", ds1)
        catalog.register_dataset("b", ds2)
        plan = make_spatial_join(IndexScanPlan(catalog.get("a")),
                                 IndexScanPlan(catalog.get("b")))
        new = execute_plan(plan, trees, config=ExecutionConfig(
            pair_enumeration="vectorized"))
        with pytest.warns(DeprecationWarning):
            old = execute_plan(plan, trees,
                               pair_enumeration="vectorized")
        assert old.key_set() == new.key_set()
        assert old.da_total == new.da_total


class TestServeConfigExecution:
    def test_default_execution_config(self):
        config = ServeConfig()
        assert config.execution == ExecutionConfig()

    def test_as_dict_embeds_execution_and_round_trips(self):
        config = ServeConfig(execution=ExecutionConfig(
            workers=4, shared_memory=False))
        doc = config.as_dict()
        assert doc["execution"]["workers"] == 4
        assert doc["execution"]["shared_memory"] is False
        rebuilt = ServeConfig(**doc)
        assert rebuilt == config

    def test_invalid_execution_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            ServeConfig(execution={"mode": "bogus"})

    def test_typoed_execution_key_rejected(self):
        # The serve-request schema path of the strict from_dict: a
        # config document with a misspelled knob must fail loudly, not
        # silently run with defaults.
        with pytest.raises(ValueError, match="unknown ExecutionConfig"):
            ServeConfig(execution={"stratgy": "pbsm"})
