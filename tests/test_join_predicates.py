"""Join predicates."""

import pytest

from repro.geometry import Rect
from repro.join import OVERLAP, Overlap, WithinDistance


class TestOverlap:
    def test_node_and_leaf_agree(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.4, 0.4), (1, 1))
        assert OVERLAP.node_test(a, b)
        assert OVERLAP.leaf_test(a, b)

    def test_disjoint(self):
        a = Rect((0, 0), (0.1, 0.1))
        b = Rect((0.5, 0.5), (1, 1))
        assert not OVERLAP.leaf_test(a, b)

    def test_shared_instance_is_overlap(self):
        assert isinstance(OVERLAP, Overlap)


class TestWithinDistance:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            WithinDistance(-0.1)

    def test_zero_degenerates_to_overlap(self):
        pred = WithinDistance(0.0)
        a = Rect((0, 0), (0.5, 0.5))
        touching = Rect((0.5, 0.0), (1, 1))
        apart = Rect((0.6, 0.6), (1, 1))
        assert pred.leaf_test(a, touching)
        assert not pred.leaf_test(a, apart)

    def test_within_distance(self):
        pred = WithinDistance(0.2)
        a = Rect((0, 0), (0.1, 1.0))
        b = Rect((0.25, 0.0), (0.4, 1.0))   # gap of 0.15
        c = Rect((0.5, 0.0), (0.6, 1.0))    # gap of 0.4
        assert pred.leaf_test(a, b)
        assert not pred.leaf_test(a, c)

    def test_node_test_is_conservative(self):
        # Node MBRs contain their data, so a node-level pass must occur
        # whenever any contained pair could qualify: node distance is a
        # lower bound on data distance.
        pred = WithinDistance(0.1)
        node1 = Rect((0, 0), (0.3, 0.3))
        node2 = Rect((0.35, 0.35), (0.7, 0.7))
        data1 = Rect((0.28, 0.28), (0.3, 0.3))     # inside node1
        data2 = Rect((0.35, 0.35), (0.37, 0.37))   # inside node2
        assert pred.leaf_test(data1, data2)
        assert pred.node_test(node1, node2)

    def test_symmetry(self):
        pred = WithinDistance(0.3)
        a = Rect((0, 0), (0.1, 0.1))
        b = Rect((0.3, 0.3), (0.5, 0.5))
        assert pred.node_test(a, b) == pred.node_test(b, a)
