"""Golden regression pins.

Every number here was produced by the current implementation on fixed
seeds and is pinned exactly.  The suite's other tests check *properties*;
these catch silent behavioural drift — a changed tie-break in a split
heuristic, a different traversal order, an off-by-one in the counters —
that property tests would happily accept.  If an intentional algorithm
change breaks one of these, regenerate the constants and say so in the
commit.
"""

import pytest

from repro.costmodel import (AnalyticalTreeParams, join_da_total,
                             join_na_total)
from repro.datasets import (clustered_rectangles, tiger_like_segments,
                            uniform_rectangles)
from repro.join import spatial_join
from repro.rtree import RStarTree, str_pack

M = 16


def build(dataset):
    tree = RStarTree(dataset.ndim, M)
    for rect, oid in dataset:
        tree.insert(rect, oid)
    return tree


class TestMeasuredGolden:
    def test_2d_rstar_join(self):
        d1 = uniform_rectangles(1000, 0.5, 2, seed=101)
        d2 = uniform_rectangles(1000, 0.5, 2, seed=102)
        t1, t2 = build(d1), build(d2)
        assert (t1.height, t2.height) == (3, 3)
        assert (len(t1.pager), len(t2.pager)) == (96, 99)
        result = spatial_join(t1, t2)
        assert result.na_total == 654
        assert result.da_total == 448
        assert result.pair_count == 2068

    def test_1d_rstar_join(self):
        d1 = uniform_rectangles(1000, 0.5, 1, seed=103)
        d2 = uniform_rectangles(1000, 0.5, 1, seed=104)
        t1, t2 = build(d1), build(d2)
        assert (t1.height, t2.height) == (3, 3)
        result = spatial_join(t1, t2)
        assert result.na_total == 308
        assert result.da_total == 235
        assert result.pair_count == 1005

    def test_str_packed_join(self):
        d1 = uniform_rectangles(1000, 0.5, 2, seed=101)
        d2 = uniform_rectangles(1000, 0.5, 2, seed=102)
        packed = str_pack(d1.items, 2, M)
        t2 = build(d2)
        assert packed.height == 3
        assert len(packed.pager) == 113
        result = spatial_join(packed, t2)
        assert result.na_total == 806
        assert result.da_total == 542
        # Pair output is index-independent.
        assert result.pair_count == 2068


class TestGeneratorGolden:
    def test_tiger_density(self):
        tg = tiger_like_segments(1000, seed=105)
        assert tg.density() == pytest.approx(0.0145196, abs=1e-7)

    def test_clustered_first_center(self):
        cl = clustered_rectangles(1000, 0.5, 2, seed=106)
        assert cl.rects[0].center == pytest.approx(
            (0.1394575997978767, 0.8841166655009782))


class TestModelGolden:
    def test_paper_scale_formulas(self):
        p1 = AnalyticalTreeParams(20000, 0.5, 50, 2)
        p2 = AnalyticalTreeParams(60000, 0.5, 50, 2)
        assert (p1.height, p2.height) == (3, 4)
        assert join_na_total(p1, p2) == pytest.approx(10032.2201,
                                                      abs=1e-3)
        assert join_da_total(p1, p2) == pytest.approx(9164.9986,
                                                      abs=1e-3)
        assert join_da_total(p2, p1) == pytest.approx(5689.1049,
                                                      abs=1e-3)
