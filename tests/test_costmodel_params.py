"""Eqs. 2-5: analytical tree parameters."""

import math

import pytest

from repro.costmodel import (AnalyticalTreeParams, MeasuredTreeParams,
                             rtree_height)
from repro.datasets import uniform_rectangles

from .conftest import build_rstar, make_items


class TestHeight:
    def test_eq2_paper_regime_1d(self):
        # Paper setup: M = 84, c = 0.67 -> cM = 56.28.  All of 20K-80K
        # give height 3 (their Figure 5a is linear for this reason).
        for n in (20000, 40000, 60000, 80000):
            assert rtree_height(n, 84) == 3

    def test_eq2_paper_regime_2d(self):
        # M = 50 -> cM = 33.5: 20K/40K -> h = 3; 60K/80K -> h = 4
        # (the paper's Figure 5b/6b height transition).
        assert rtree_height(20000, 50) == 3
        assert rtree_height(40000, 50) == 4   # borderline: (cM)^3 = 37595
        assert rtree_height(60000, 50) == 4
        assert rtree_height(80000, 50) == 4

    def test_bench_scale_heights(self):
        # The scaled default grid preserves the paper's structure
        # (DESIGN.md): n=1 all h=3; n=2 transitions between 4K and 8K.
        for n in (2000, 4000, 8000, 10000):
            assert rtree_height(n, 41) == 3
        assert rtree_height(2000, 24) == 3
        assert rtree_height(4000, 24) == 3
        assert rtree_height(8000, 24) == 4
        assert rtree_height(10000, 24) == 4

    def test_small_sets(self):
        assert rtree_height(0, 50) == 1
        assert rtree_height(1, 50) == 1
        assert rtree_height(33, 50) == 1     # fits an average root
        assert rtree_height(34, 50) == 2

    def test_monotone_in_n(self):
        heights = [rtree_height(n, 24) for n in range(1, 50000, 500)]
        assert heights == sorted(heights)

    def test_matches_formula(self):
        n, m, c = 12345, 30, 0.67
        cm = c * m
        expected = 1 + math.ceil(math.log(n / cm, cm))
        assert rtree_height(n, m, c) == expected

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            rtree_height(-1, 50)
        with pytest.raises(ValueError):
            rtree_height(10, 1)
        with pytest.raises(ValueError):
            rtree_height(10, 50, fill=0.0)
        with pytest.raises(ValueError):
            rtree_height(10, 2, fill=0.4)   # cM <= 1


class TestAnalyticalParams:
    def _params(self, n=8000, d=0.5, m=50, ndim=2):
        return AnalyticalTreeParams(n, d, m, ndim)

    def test_eq3_node_counts(self):
        p = self._params()
        cm = 0.67 * 50
        assert p.nodes_at(1) == pytest.approx(8000 / cm)
        assert p.nodes_at(2) == pytest.approx(8000 / cm ** 2)

    def test_eq3_root_is_one(self):
        p = self._params()
        assert p.nodes_at(p.height) == 1.0

    def test_eq5_density_propagation(self):
        p = self._params(d=0.5, ndim=2)
        cm = 0.67 * 50
        expected_d1 = (1 + (math.sqrt(0.5) - 1) / math.sqrt(cm)) ** 2
        assert p.density_at(1) == pytest.approx(expected_d1)

    def test_density_level_zero_is_data_density(self):
        p = self._params(d=0.37)
        assert p.density_at(0) == 0.37

    def test_density_approaches_one_with_levels(self):
        # For D < 1 the node density climbs toward (but below) 1.
        p = AnalyticalTreeParams(10 ** 6, 0.3, 50, 2)
        densities = [p.density_at(j) for j in range(p.height)]
        assert densities == sorted(densities)
        assert densities[-1] < 1.0

    def test_density_above_one_decreases(self):
        p = AnalyticalTreeParams(10 ** 6, 3.0, 50, 2)
        assert p.density_at(1) < 3.0
        assert p.density_at(1) > 1.0

    def test_eq4_extents(self):
        p = self._params()
        for j in (1, 2):
            side = (p.density_at(j) / p.nodes_at(j)) ** 0.5
            assert p.extents_at(j) == pytest.approx((side, side))

    def test_extents_clamped_to_workspace(self):
        p = AnalyticalTreeParams(10, 5.0, 50, 2)
        assert max(p.extents_at(1)) <= 1.0

    def test_root_extent_is_workspace(self):
        p = self._params()
        assert p.extents_at(p.height) == (1.0, 1.0)

    def test_average_object_extents(self):
        p = self._params(n=100, d=0.25, ndim=2)
        assert p.average_object_extents() == pytest.approx((0.05, 0.05))

    def test_average_object_extents_empty(self):
        p = AnalyticalTreeParams(0, 0.0, 50, 2)
        assert p.average_object_extents() == (0.0, 0.0)

    def test_from_dataset(self):
        ds = uniform_rectangles(500, 0.4, 2, seed=1)
        p = AnalyticalTreeParams.from_dataset(ds, 50)
        assert p.n_objects == 500
        assert p.density == pytest.approx(0.4)

    def test_height_override(self):
        p = AnalyticalTreeParams(100, 0.5, 50, 2, height=4)
        assert p.height == 4
        assert p.extents_at(3)          # propagated far enough
        with pytest.raises(ValueError):
            AnalyticalTreeParams(100, 0.5, 50, 2, height=0)

    def test_level_bounds_checked(self):
        p = self._params()
        with pytest.raises(ValueError):
            p.nodes_at(0)
        with pytest.raises(ValueError):
            p.density_at(p.height + 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AnalyticalTreeParams(-1, 0.5, 50, 2)
        with pytest.raises(ValueError):
            AnalyticalTreeParams(10, -0.5, 50, 2)
        with pytest.raises(ValueError):
            AnalyticalTreeParams(10, 0.5, 50, 0)


class TestModelAgainstRealTrees:
    def test_height_matches_real_rstar(self):
        ds = uniform_rectangles(800, 0.5, 2, seed=2)
        tree = build_rstar(ds.items, max_entries=16)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        assert p.height == tree.height

    def test_leaf_count_within_20_percent(self):
        ds = uniform_rectangles(1500, 0.5, 2, seed=3)
        tree = build_rstar(ds.items, max_entries=16)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        actual = len(tree.nodes_at_level(1))
        assert p.nodes_at(1) == pytest.approx(actual, rel=0.2)

    def test_leaf_extent_within_25_percent(self):
        ds = uniform_rectangles(1500, 0.5, 2, seed=4)
        tree = build_rstar(ds.items, max_entries=16)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        measured = tree.level_stats()[1].avg_extents[0]
        assert p.extents_at(1)[0] == pytest.approx(measured, rel=0.25)


class TestMeasuredParams:
    def test_mirrors_level_stats(self):
        items = make_items(400, seed=5)
        tree = build_rstar(items, max_entries=16)
        p = MeasuredTreeParams(tree)
        stats = tree.level_stats()
        assert p.height == tree.height
        assert p.nodes_at(1) == stats[1].count
        assert p.extents_at(1) == stats[1].avg_extents

    def test_root_level_convention(self):
        items = make_items(400, seed=6)
        tree = build_rstar(items, max_entries=16)
        p = MeasuredTreeParams(tree)
        assert p.nodes_at(tree.height) == 1.0
        assert p.extents_at(tree.height) == (1.0, 1.0)

    def test_height_one_tree_is_all_root(self):
        items = make_items(5, seed=7)
        tree = build_rstar(items, max_entries=16)   # height 1
        p = MeasuredTreeParams(tree)
        assert p.height == 1
        assert p.nodes_at(1) == 1.0                 # the root-leaf
        assert p.extents_at(1) == (1.0, 1.0)
