"""Unit tests for the workspace and density helpers."""

import pytest

from repro.geometry import Rect, Workspace, clamp_to_unit, density


class TestDensity:
    def test_empty_set(self):
        assert density([]) == 0.0

    def test_single(self):
        assert density([Rect((0, 0), (0.5, 0.5))]) == pytest.approx(0.25)

    def test_sum_of_areas(self):
        rects = [Rect((0, 0), (0.5, 0.5)), Rect((0.5, 0.5), (1, 1))]
        assert density(rects) == pytest.approx(0.5)

    def test_density_above_one_possible(self):
        rects = [Rect((0, 0), (1, 1))] * 3
        assert density(rects) == pytest.approx(3.0)

    def test_matches_n_times_average_area(self):
        rects = [Rect((0.1 * i, 0.0), (0.1 * i + 0.05, 0.2))
                 for i in range(5)]
        avg = sum(r.area() for r in rects) / 5
        assert density(rects) == pytest.approx(5 * avg)


class TestClamp:
    def test_inside_unchanged(self):
        r = Rect((0.1, 0.1), (0.9, 0.9))
        assert clamp_to_unit(r) == r

    def test_clips_overhang(self):
        r = Rect((-0.5, 0.5), (0.5, 1.5))
        assert clamp_to_unit(r) == Rect((0.0, 0.5), (0.5, 1.0))


class TestWorkspace:
    def test_default_unit(self):
        ws = Workspace(ndim=2)
        assert ws.bounds == Rect.unit(2)
        assert ws.ndim == 2

    def test_requires_bounds_or_ndim(self):
        with pytest.raises(ValueError):
            Workspace()

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError, match="positive extent"):
            Workspace(Rect((0, 0), (1, 0)))

    def test_to_unit(self):
        ws = Workspace(Rect((10.0, 20.0), (20.0, 40.0)))
        r = ws.to_unit(Rect((15.0, 30.0), (20.0, 40.0)))
        assert r == Rect((0.5, 0.5), (1.0, 1.0))

    def test_from_unit_inverts_to_unit(self):
        ws = Workspace(Rect((-5.0,), (5.0,)))
        original = Rect((-1.0,), (2.0,))
        assert ws.from_unit(ws.to_unit(original)) == original

    def test_normalize_all(self):
        ws = Workspace(Rect((0.0, 0.0), (2.0, 2.0)))
        out = ws.normalize_all([Rect((0, 0), (1, 1)),
                                Rect((1, 1), (2, 2))])
        assert out == [Rect((0, 0), (0.5, 0.5)),
                       Rect((0.5, 0.5), (1, 1))]

    def test_dim_mismatch(self):
        ws = Workspace(ndim=2)
        with pytest.raises(ValueError):
            ws.to_unit(Rect((0,), (1,)))
