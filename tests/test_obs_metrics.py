"""Unit tests for counters, gauges, histograms and the registry."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.storage import AccessStats


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_bucketing(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # Inclusive upper bounds: 0.5 and 1.0 -> first, 5.0 -> second,
        # 100.0 -> overflow.
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.mean == pytest.approx(106.5 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))

    def test_histogram_merge_requires_equal_buckets(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_histogram_merge_adds(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        a.merge(b)
        assert a.counts == [1, 1, 0]
        assert a.count == 2


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")
        assert len(reg) == 3

    def test_record_access_stats(self):
        stats = AccessStats()
        stats.record("R1", 2, False)
        stats.record("R2", 1, True)
        stats.record_retry("R1", 1, backoff=0.004)
        reg = MetricsRegistry()
        reg.record_access_stats(stats, prefix="join")
        snap = reg.as_dict()
        assert snap["counters"]["join.na"] == 2
        assert snap["counters"]["join.da"] == 1
        assert snap["counters"]["join.retries"] == 1
        assert snap["counters"]["join.na.R1"] == 1
        assert snap["counters"]["join.da.R2"] == 0
        assert snap["gauges"]["join.accounted_backoff"] == \
            pytest.approx(0.004)

    def test_round_trip_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(1.25)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        doc = json.loads(json.dumps(reg.as_dict(), allow_nan=False))
        back = MetricsRegistry.from_dict(doc)
        assert back.as_dict() == reg.as_dict()

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b)
        snap = a.as_dict()
        assert snap["counters"]["c"] == 3
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_accepts_dict_deltas(self):
        # Worker processes ship as_dict() documents, not objects.
        a = MetricsRegistry()
        a.counter("c").inc(1)
        a.merge({"counters": {"c": 4, "new": 2}})
        assert a.as_dict()["counters"] == {"c": 5, "new": 2}

    def test_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge(b)
        assert a.gauge("g").value == 9.0

    def test_merge_rejects_unknown_sections(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"conters": {"c": 1}})
