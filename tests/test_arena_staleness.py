"""Arena cache staleness: every mutation path must invalidate.

The level-batched traversal (:mod:`repro.join.batch`) plans entire
frontiers from ``tree.arena()`` coordinates.  A stale cached arena
would silently desynchronize the batch engine from the tree — wrong
pairs with no error — so this file pins that *every* way a tree can
change invalidates the cache: plain ``insert``/``delete``, bulk-loaded
trees mutated after packing (``str_pack``/``hilbert_pack``), the
R*-tree forced-reinsertion path, and direct node surgery (in-place
entry-list mutation and wholesale ``entries`` rebinds).  The converse
is pinned too: an unmutated tree keeps returning the *same* cached
arena object, since a spurious rebuild per join would erase the point
of caching.
"""

import pickle
import random

import pytest

from repro.exec import ExecutionConfig
from repro.geometry import Rect
from repro.join import spatial_join, supports_level_batch
from repro.join.predicates import Overlap
from repro.rtree import RStarTree, hilbert_pack, str_pack
from repro.rtree.node import Entry

BATCH = ExecutionConfig(traversal="level-batch")
STACK = ExecutionConfig()


def _rect(rng: random.Random, side: float = 0.05) -> Rect:
    lo = (rng.random() * 0.9, rng.random() * 0.9)
    return Rect(lo, (lo[0] + side, lo[1] + side))


def _tree(n: int, seed: int, max_entries: int = 6) -> RStarTree:
    rng = random.Random(seed)
    tree = RStarTree(2, max_entries)
    for oid in range(n):
        tree.insert(_rect(rng), oid)
    return tree


def _items(n: int, seed: int) -> list[tuple[Rect, int]]:
    rng = random.Random(seed)
    return [(_rect(rng), oid) for oid in range(n)]


def _arena_matches_tree(tree) -> bool:
    """Does the cached arena hold exactly the tree's current MBRs?"""
    arena = tree.arena()
    pages = {node.page_id for node in tree.nodes()}
    if set(arena.index) != pages:
        return False
    for node in tree.nodes():
        cols = arena.slice(node.page_id)
        if len(cols) != len(node.entries):
            return False
        for k in range(tree.ndim):
            lo = [float(v) for v in cols.lo_col(k)]
            hi = [float(v) for v in cols.hi_col(k)]
            for i, entry in enumerate(node.entries):
                if lo[i] != entry.rect.lo[k] or hi[i] != entry.rect.hi[k]:
                    return False
    return True


def _batch_equals_stack(t1, t2) -> None:
    """Behavioral check: a stale arena would break this equality."""
    if not supports_level_batch(Overlap(), "nested-loop"):
        return                           # pure python: batch falls back
    batch = spatial_join(t1, t2, config=BATCH)
    stack = spatial_join(t1, t2, config=STACK)
    assert batch.pairs == stack.pairs
    assert batch.na_total == stack.na_total
    assert batch.da_total == stack.da_total


# -- the converse: no spurious rebuilds ---------------------------------------


def test_unmutated_tree_reuses_cached_arena():
    tree = _tree(120, seed=1)
    first = tree.arena()
    assert tree.arena() is first
    tree.range_query(Rect((0.1, 0.1), (0.4, 0.4)))    # reads don't count
    assert tree.arena() is first
    assert tree.arena(rebuild=True) is not first      # explicit rebuild


def test_drop_arena_forces_rebuild():
    tree = _tree(60, seed=2)
    first = tree.arena()
    tree.drop_arena()
    assert tree.arena() is not first
    assert _arena_matches_tree(tree)


# -- insert / delete ----------------------------------------------------------


def test_insert_invalidates_arena():
    tree = _tree(80, seed=3)
    first = tree.arena()
    tree.insert(Rect((0.2, 0.2), (0.25, 0.25)), 10_000)
    assert not tree._arena_current()
    assert tree.arena() is not first
    assert _arena_matches_tree(tree)


def test_delete_invalidates_arena():
    rng = random.Random(4)
    items = [(_rect(rng), oid) for oid in range(80)]
    tree = RStarTree(2, 6)
    for rect, oid in items:
        tree.insert(rect, oid)
    first = tree.arena()
    rect, oid = items[17]
    assert tree.delete(rect, oid)
    assert not tree._arena_current()
    assert tree.arena() is not first
    assert _arena_matches_tree(tree)


def test_failed_delete_keeps_arena():
    tree = _tree(40, seed=5)
    first = tree.arena()
    assert not tree.delete(Rect((0.0, 0.0), (0.001, 0.001)), 999_999)
    assert tree.arena() is first         # nothing changed, cache holds


# -- bulk-loaded trees mutated after packing ----------------------------------


@pytest.mark.parametrize("pack", [str_pack, hilbert_pack])
def test_bulk_loaded_tree_invalidates_on_mutation(pack):
    tree = pack(_items(200, seed=6), ndim=2, max_entries=8)
    first = tree.arena()
    assert tree.arena() is first         # packed tree caches like any other
    tree.insert(Rect((0.5, 0.5), (0.55, 0.55)), 10_000)
    assert not tree._arena_current()
    assert tree.arena() is not first
    assert _arena_matches_tree(tree)

    second = tree.arena()
    rect, oid = _items(200, seed=6)[3]
    assert tree.delete(rect, oid)
    assert tree.arena() is not second
    assert _arena_matches_tree(tree)


@pytest.mark.parametrize("pack", [str_pack, hilbert_pack])
def test_bulk_loaded_tree_batch_join_after_mutation(pack):
    t1 = pack(_items(300, seed=7), ndim=2, max_entries=8)
    t2 = _tree(300, seed=8)
    t1.arena()
    t2.arena()
    t1.insert(Rect((0.3, 0.3), (0.36, 0.36)), 10_000)
    _batch_equals_stack(t1, t2)


# -- the R* forced-reinsertion path -------------------------------------------


def test_rstar_reinsert_invalidates_arena():
    """Overflow handled by forced reinsertion (not a split) must still
    invalidate: reinsertion rewires nodes *within* one ``insert`` call,
    so a cache keyed on anything weaker than the mutation counter plus
    entry-list versions would miss it."""
    rng = random.Random(9)
    tree = RStarTree(2, 4)               # tiny fanout: overflows early
    reinserts = []
    orig = tree._reinsert

    def spy(path, indices):
        reinserts.append(len(path))
        orig(path, indices)

    tree._reinsert = spy
    oid = 0
    stale_seen = 0
    while not reinserts or stale_seen < 3:
        first = tree.arena()
        # Clustered inserts overflow the same subtree repeatedly.
        lo = (0.4 + rng.random() * 0.1, 0.4 + rng.random() * 0.1)
        tree.insert(Rect(lo, (lo[0] + 0.02, lo[1] + 0.02)), oid)
        oid += 1
        assert not tree._arena_current()
        assert tree.arena() is not first
        if reinserts:
            stale_seen += 1
        assert oid < 500, "never triggered a forced reinsertion"
    assert reinserts                     # the path actually ran
    assert _arena_matches_tree(tree)


# -- direct node surgery ------------------------------------------------------


def test_inplace_entry_mutation_invalidates_arena():
    tree = _tree(60, seed=10)
    first = tree.arena()
    leaf = next(node for node in tree.nodes() if node.is_leaf)
    leaf.entries.append(Entry(Rect((0.9, 0.9), (0.95, 0.95)), 77_000))
    assert not tree._arena_current()     # caught via entries.version
    assert tree.arena() is not first
    assert _arena_matches_tree(tree)


def test_entries_rebind_invalidates_arena():
    tree = _tree(60, seed=11)
    first = tree.arena()
    leaf = next(node for node in tree.nodes() if node.is_leaf)
    leaf.entries = type(leaf.entries)(list(leaf.entries))
    assert not tree._arena_current()     # caught via object identity
    assert tree.arena() is not first
    assert _arena_matches_tree(tree)


# -- pickling sheds the cache entirely ----------------------------------------


def test_unpickled_tree_rebuilds_fresh_arena():
    tree = _tree(60, seed=12)
    tree.arena()
    clone = pickle.loads(pickle.dumps(tree))
    assert clone._arena is None
    assert _arena_matches_tree(clone)


# -- end to end: mutate between batch joins -----------------------------------


def test_batch_join_correct_across_interleaved_mutations():
    """Join, mutate, join again — the second batch join must see the
    mutated tree, not the arena snapshot the first join built."""
    t1 = _tree(250, seed=13)
    t2 = _tree(250, seed=14)
    _batch_equals_stack(t1, t2)
    t1.insert(Rect((0.1, 0.1), (0.18, 0.18)), 50_000)
    rng = random.Random(14)
    rect0 = _rect(rng)
    assert t2.delete(rect0, 0)
    _batch_equals_stack(t1, t2)
