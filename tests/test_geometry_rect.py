"""Unit tests for the Rect primitive."""

import math

import pytest

from repro.geometry import Rect


class TestConstruction:
    def test_basic(self):
        r = Rect((0.0, 0.0), (1.0, 2.0))
        assert r.lo == (0.0, 0.0)
        assert r.hi == (1.0, 2.0)

    def test_accepts_any_sequence(self):
        r = Rect([0, 0], [1, 1])
        assert r.lo == (0.0, 0.0)

    def test_coerces_to_float(self):
        r = Rect((0,), (1,))
        assert isinstance(r.lo[0], float)

    def test_rejects_mismatched_dims(self):
        with pytest.raises(ValueError, match="dimensionalities differ"):
            Rect((0.0,), (1.0, 1.0))

    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            Rect((), ())

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="inverted"):
            Rect((1.0,), (0.0,))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            Rect((float("nan"),), (1.0,))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            Rect((0.0,), (float("inf"),))

    def test_degenerate_allowed(self):
        r = Rect((0.5, 0.5), (0.5, 0.5))
        assert r.area() == 0.0

    def test_from_center(self):
        r = Rect.from_center((0.5, 0.5), (0.2, 0.4))
        assert r.lo == (0.4, 0.3)
        assert r.hi == (0.6, 0.7)

    def test_from_center_dim_mismatch(self):
        with pytest.raises(ValueError):
            Rect.from_center((0.5,), (0.2, 0.2))

    def test_point(self):
        p = Rect.point((0.3, 0.7))
        assert p.lo == p.hi == (0.3, 0.7)

    def test_unit(self):
        u = Rect.unit(3)
        assert u.lo == (0.0, 0.0, 0.0)
        assert u.hi == (1.0, 1.0, 1.0)

    def test_unit_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            Rect.unit(0)

    def test_bounding(self):
        b = Rect.bounding([
            Rect((0.0, 0.5), (0.2, 0.6)),
            Rect((0.1, 0.0), (0.9, 0.4)),
        ])
        assert b == Rect((0.0, 0.0), (0.9, 0.6))

    def test_bounding_single(self):
        r = Rect((0.1,), (0.2,))
        assert Rect.bounding([r]) == r

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Rect.bounding([])

    def test_bounding_mixed_dims_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([Rect((0,), (1,)), Rect((0, 0), (1, 1))])


class TestProperties:
    def test_ndim(self):
        assert Rect((0, 0, 0), (1, 1, 1)).ndim == 3

    def test_extents(self):
        assert Rect((0.0, 0.2), (0.5, 1.0)).extents == (0.5, 0.8)

    def test_center(self):
        assert Rect((0.0, 0.0), (1.0, 0.5)).center == (0.5, 0.25)

    def test_area_1d_is_length(self):
        assert Rect((0.2,), (0.7,)).area() == pytest.approx(0.5)

    def test_area_2d(self):
        assert Rect((0, 0), (0.5, 0.4)).area() == pytest.approx(0.2)

    def test_margin(self):
        assert Rect((0, 0), (0.5, 0.4)).margin() == pytest.approx(0.9)


class TestPredicates:
    def test_intersects_overlapping(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.4, 0.4), (1, 1))
        assert a.intersects(b) and b.intersects(a)

    def test_intersects_touching_edges(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.5, 0.0), (1, 1))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect((0, 0), (0.2, 0.2))
        b = Rect((0.5, 0.5), (1, 1))
        assert not a.intersects(b)

    def test_disjoint_in_one_dim_only(self):
        a = Rect((0, 0), (1.0, 0.2))
        b = Rect((0.0, 0.5), (1.0, 1.0))
        assert not a.intersects(b)

    def test_intersects_dim_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Rect((0,), (1,)).intersects(Rect((0, 0), (1, 1)))

    def test_contains(self):
        outer = Rect((0, 0), (1, 1))
        inner = Rect((0.2, 0.2), (0.8, 0.8))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_itself(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains(r)

    def test_contains_point(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains_point((0.5, 0.5))
        assert r.contains_point((0.0, 1.0))  # closed box
        assert not r.contains_point((1.1, 0.5))

    def test_contains_point_dim_mismatch(self):
        with pytest.raises(ValueError):
            Rect((0,), (1,)).contains_point((0.5, 0.5))


def assert_rect_close(a: Rect, b: Rect) -> None:
    assert a.lo == pytest.approx(b.lo)
    assert a.hi == pytest.approx(b.hi)


class TestCombining:
    def test_union(self):
        a = Rect((0, 0), (0.3, 0.3))
        b = Rect((0.5, 0.1), (0.9, 0.2))
        assert a.union(b) == Rect((0, 0), (0.9, 0.3))

    def test_union_commutative(self):
        a = Rect((0, 0), (0.3, 0.3))
        b = Rect((0.5, 0.1), (0.9, 0.2))
        assert a.union(b) == b.union(a)

    def test_intersection(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.3, 0.2), (1, 1))
        assert a.intersection(b) == Rect((0.3, 0.2), (0.5, 0.5))

    def test_intersection_disjoint_is_none(self):
        a = Rect((0,), (0.2,))
        b = Rect((0.5,), (1,))
        assert a.intersection(b) is None

    def test_intersection_area(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.3, 0.2), (1, 1))
        assert a.intersection_area(b) == pytest.approx(0.2 * 0.3)

    def test_intersection_area_disjoint(self):
        a = Rect((0, 0), (0.1, 0.1))
        b = Rect((0.5, 0.5), (1, 1))
        assert a.intersection_area(b) == 0.0

    def test_intersection_area_matches_intersection(self):
        a = Rect((0, 0), (0.7, 0.6))
        b = Rect((0.2, 0.3), (0.9, 1.0))
        assert a.intersection_area(b) == pytest.approx(
            a.intersection(b).area())

    def test_enlargement(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.5, 0.5), (1, 1))
        assert a.enlargement(b) == pytest.approx(1.0 - 0.25)

    def test_enlargement_contained_is_zero(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((0.2, 0.2), (0.4, 0.4))
        assert a.enlargement(b) == pytest.approx(0.0)

    def test_inflate(self):
        r = Rect((0.4, 0.4), (0.6, 0.6)).inflate(0.1)
        assert_rect_close(r, Rect((0.3, 0.3), (0.7, 0.7)))

    def test_inflate_per_dimension(self):
        r = Rect((0.4, 0.4), (0.6, 0.6)).inflate((0.1, 0.0))
        assert_rect_close(r, Rect((0.3, 0.4), (0.7, 0.6)))

    def test_inflate_negative_clamps_at_center(self):
        r = Rect((0.4,), (0.6,)).inflate(-0.5)
        assert r == Rect((0.5,), (0.5,))

    def test_inflate_dim_mismatch(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1, 1)).inflate((0.1,))

    def test_translate(self):
        r = Rect((0.1, 0.2), (0.3, 0.4)).translate((0.5, -0.1))
        assert_rect_close(r, Rect((0.6, 0.1), (0.8, 0.3)))

    def test_min_distance_overlapping_is_zero(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.4, 0.4), (1, 1))
        assert a.min_distance(b) == 0.0

    def test_min_distance_axis_gap(self):
        a = Rect((0, 0), (0.2, 1.0))
        b = Rect((0.5, 0.0), (0.7, 1.0))
        assert a.min_distance(b) == pytest.approx(0.3)

    def test_min_distance_diagonal(self):
        a = Rect((0, 0), (0.1, 0.1))
        b = Rect((0.4, 0.5), (0.6, 0.7))
        assert a.min_distance(b) == pytest.approx(math.hypot(0.3, 0.4))

    def test_min_distance_symmetric(self):
        a = Rect((0, 0), (0.1, 0.1))
        b = Rect((0.4, 0.5), (0.6, 0.7))
        assert a.min_distance(b) == b.min_distance(a)


class TestProtocol:
    def test_equality_and_hash(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((0, 0), (1, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inequality(self):
        assert Rect((0,), (1,)) != Rect((0,), (0.5,))
        assert Rect((0,), (1,)) != "not a rect"

    def test_immutability(self):
        r = Rect((0,), (1,))
        with pytest.raises(AttributeError):
            r.lo = (5.0,)

    def test_iter_gives_per_dim_spans(self):
        r = Rect((0.1, 0.2), (0.3, 0.4))
        assert list(r) == [(0.1, 0.3), (0.2, 0.4)]

    def test_repr_roundtrips_visually(self):
        assert "0.5" in repr(Rect((0.5,), (1.0,)))
