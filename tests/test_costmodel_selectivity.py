"""§5 extension: join selectivity estimation."""

import pytest

from repro.costmodel import (AnalyticalTreeParams, join_selectivity_fraction,
                             join_selectivity_pairs)
from repro.datasets import uniform_rectangles
from repro.join import spatial_join

from .conftest import build_rstar


def params(n, d=0.5, ndim=2, m=50):
    return AnalyticalTreeParams(n, d, m, ndim)


class TestSelectivityFormula:
    def test_hand_computed(self):
        # N1 = N2 = 100, D = 0.25 -> s̄ = 0.05 per side;
        # pairs = 100 * 100 * (0.1)^2 = 100.
        p = params(100, d=0.25)
        assert join_selectivity_pairs(p, p) == pytest.approx(100.0)

    def test_symmetric(self):
        p1, p2 = params(300, d=0.2), params(700, d=0.6)
        assert join_selectivity_pairs(p1, p2) == pytest.approx(
            join_selectivity_pairs(p2, p1))

    def test_fraction(self):
        p1, p2 = params(100, d=0.25), params(100, d=0.25)
        assert join_selectivity_fraction(p1, p2) == pytest.approx(0.01)

    def test_fraction_of_empty_is_zero(self):
        empty = params(0, d=0.0)
        assert join_selectivity_fraction(empty, params(100)) == 0.0

    def test_distance_increases_pairs(self):
        p1, p2 = params(500), params(500)
        base = join_selectivity_pairs(p1, p2)
        wider = join_selectivity_pairs(p1, p2, distance=0.05)
        assert wider > base

    def test_distance_validated(self):
        with pytest.raises(ValueError):
            join_selectivity_pairs(params(10), params(10), distance=-1)

    def test_ndim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            join_selectivity_pairs(params(10, ndim=1, m=84),
                                   params(10, ndim=2))

    def test_clamped_at_cartesian_product(self):
        # Certain overlap cannot exceed N1 * N2.
        p1 = params(50, d=40.0)   # huge objects
        p2 = params(60, d=40.0)
        assert join_selectivity_pairs(p1, p2) <= 50 * 60 + 1e-9


class TestGridSelectivity:
    def test_reduces_to_uniform_on_uniform_data(self):
        from repro.costmodel import join_selectivity_pairs_grid
        d1 = uniform_rectangles(1500, 0.5, 2, seed=21)
        d2 = uniform_rectangles(1500, 0.5, 2, seed=22)
        p1 = AnalyticalTreeParams.from_dataset(d1, 16)
        p2 = AnalyticalTreeParams.from_dataset(d2, 16)
        grid = join_selectivity_pairs_grid(d1, d2, resolution=5)
        assert grid == pytest.approx(
            join_selectivity_pairs(p1, p2), rel=0.1)

    def test_beats_uniform_on_clustered_data(self):
        from repro.costmodel import join_selectivity_pairs_grid
        from repro.datasets import clustered_rectangles
        d1 = clustered_rectangles(1500, 0.5, 2, clusters=4,
                                  spread=0.04, seed=23)
        d2 = clustered_rectangles(1500, 0.5, 2, clusters=4,
                                  spread=0.04, seed=24)
        measured = spatial_join(build_rstar(d1.items, max_entries=16),
                                build_rstar(d2.items, max_entries=16),
                                collect_pairs=False).pair_count
        p1 = AnalyticalTreeParams.from_dataset(d1, 16)
        p2 = AnalyticalTreeParams.from_dataset(d2, 16)
        uniform_err = abs(join_selectivity_pairs(p1, p2) - measured)
        grid_err = abs(join_selectivity_pairs_grid(d1, d2,
                                                   resolution=6)
                       - measured)
        assert grid_err < uniform_err

    def test_distance_rescaled_into_cells(self):
        from repro.costmodel import join_selectivity_pairs_grid
        d1 = uniform_rectangles(800, 0.4, 2, seed=25)
        d2 = uniform_rectangles(800, 0.4, 2, seed=26)
        base = join_selectivity_pairs_grid(d1, d2, resolution=4)
        wider = join_selectivity_pairs_grid(d1, d2, resolution=4,
                                            distance=0.02)
        assert wider > base

    def test_validation(self):
        from repro.costmodel import join_selectivity_pairs_grid
        d1 = uniform_rectangles(100, 0.2, 1, seed=27)
        d2 = uniform_rectangles(100, 0.2, 2, seed=28)
        with pytest.raises(ValueError):
            join_selectivity_pairs_grid(d1, d2)
        d3 = uniform_rectangles(100, 0.2, 2, seed=29)
        with pytest.raises(ValueError):
            join_selectivity_pairs_grid(d2, d3, distance=-1.0)


class TestSelectivityAgainstMeasurement:
    def test_uniform_join_pair_count(self):
        d1 = uniform_rectangles(1200, 0.5, 2, seed=1)
        d2 = uniform_rectangles(1200, 0.5, 2, seed=2)
        result = spatial_join(build_rstar(d1.items, max_entries=16),
                              build_rstar(d2.items, max_entries=16),
                              collect_pairs=False)
        p1 = AnalyticalTreeParams.from_dataset(d1, 16)
        p2 = AnalyticalTreeParams.from_dataset(d2, 16)
        predicted = join_selectivity_pairs(p1, p2)
        assert predicted == pytest.approx(result.pair_count, rel=0.15)

    def test_asymmetric_cardinalities(self):
        d1 = uniform_rectangles(500, 0.4, 2, seed=3)
        d2 = uniform_rectangles(2000, 0.6, 2, seed=4)
        result = spatial_join(build_rstar(d1.items, max_entries=16),
                              build_rstar(d2.items, max_entries=16),
                              collect_pairs=False)
        p1 = AnalyticalTreeParams.from_dataset(d1, 16)
        p2 = AnalyticalTreeParams.from_dataset(d2, 16)
        assert join_selectivity_pairs(p1, p2) == pytest.approx(
            result.pair_count, rel=0.15)

    def test_one_dimensional(self):
        d1 = uniform_rectangles(800, 0.5, 1, seed=5)
        d2 = uniform_rectangles(800, 0.5, 1, seed=6)
        result = spatial_join(build_rstar(d1.items, ndim=1, max_entries=16),
                              build_rstar(d2.items, ndim=1, max_entries=16),
                              collect_pairs=False)
        p1 = AnalyticalTreeParams.from_dataset(d1, 16)
        p2 = AnalyticalTreeParams.from_dataset(d2, 16)
        assert join_selectivity_pairs(p1, p2) == pytest.approx(
            result.pair_count, rel=0.15)
