"""§4.2: the local-density grid correction for non-uniform data."""

import pytest

from repro.costmodel import (AnalyticalTreeParams, NonUniformJoinModel,
                             join_da_total, join_na_total)
from repro.datasets import clustered_rectangles, uniform_rectangles
from repro.join import spatial_join

from .conftest import build_rstar


class TestGridModel:
    def test_reduces_to_uniform_for_uniform_data(self):
        # On uniform data the grid correction should land close to the
        # global-uniformity formula.
        ds = uniform_rectangles(3000, 0.5, 2, seed=1)
        model = NonUniformJoinModel(ds, ds, max_entries=16, resolution=3)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        assert model.na_total() == pytest.approx(
            join_na_total(p, p), rel=0.35)
        assert model.da_total() == pytest.approx(
            join_da_total(p, p), rel=0.35)

    def test_resolution_one_is_nearly_global(self):
        ds = uniform_rectangles(2000, 0.5, 2, seed=2)
        model = NonUniformJoinModel(ds, ds, max_entries=16, resolution=1)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        assert model.na_total() == pytest.approx(
            join_na_total(p, p), rel=0.05)

    def test_beats_uniform_model_on_skewed_data(self):
        skewed = clustered_rectangles(2500, 0.5, 2, clusters=4,
                                      spread=0.04, seed=3)
        tree = build_rstar(skewed.items, max_entries=16)
        measured = spatial_join(tree, tree, collect_pairs=False)

        p = AnalyticalTreeParams.from_dataset(skewed, 16)
        uniform_err = abs(join_na_total(p, p) - measured.na_total)
        grid = NonUniformJoinModel(skewed, skewed, max_entries=16,
                                   resolution=6)
        grid_err = abs(grid.na_total() - measured.na_total)
        assert grid_err < uniform_err

    def test_cells_skip_empty_regions(self):
        ds = clustered_rectangles(1000, 0.3, 2, clusters=2,
                                  spread=0.02, seed=4)
        model = NonUniformJoinModel(ds, ds, max_entries=16, resolution=8)
        estimates = model.cell_estimates()
        assert len(estimates) < 64      # far fewer than 8x8 cells priced

    def test_cell_estimates_cached(self):
        ds = uniform_rectangles(500, 0.4, 2, seed=5)
        model = NonUniformJoinModel(ds, ds, max_entries=16, resolution=2)
        assert model.cell_estimates() is model.cell_estimates()

    def test_da_le_na_per_cell(self):
        ds = clustered_rectangles(1500, 0.5, 2, seed=6)
        model = NonUniformJoinModel(ds, ds, max_entries=16, resolution=4)
        for cell in model.cell_estimates():
            assert cell.da <= cell.na + 1e-9

    def test_dimensionality_mismatch_rejected(self):
        a = uniform_rectangles(100, 0.2, 1, seed=7)
        b = uniform_rectangles(100, 0.2, 2, seed=8)
        with pytest.raises(ValueError):
            NonUniformJoinModel(a, b, max_entries=16)

    def test_heights_taken_from_global_trees(self):
        ds = uniform_rectangles(3000, 0.5, 2, seed=9)
        model = NonUniformJoinModel(ds, ds, max_entries=16, resolution=4)
        p = AnalyticalTreeParams.from_dataset(ds, 16)
        assert model.height1 == p.height
        assert model.height2 == p.height
