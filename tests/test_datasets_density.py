"""Local density grids."""

import pytest

from repro.datasets import (LocalDensityGrid, SpatialDataset,
                            global_density, uniform_rectangles)
from repro.geometry import Rect


class TestGlobalDensity:
    def test_matches_dataset_density(self):
        ds = uniform_rectangles(100, 0.4, 2, seed=1)
        assert global_density(ds.items) == pytest.approx(ds.density())


class TestLocalDensityGrid:
    def test_counts_sum_to_total(self):
        ds = uniform_rectangles(300, 0.5, 2, seed=2)
        grid = LocalDensityGrid(ds, 4)
        assert sum(grid.counts) == 300

    def test_fractions_sum_to_one(self):
        ds = uniform_rectangles(300, 0.5, 2, seed=3)
        grid = LocalDensityGrid(ds, 4)
        assert sum(f for f, _d in grid.cells()) == pytest.approx(1.0)

    def test_cell_count(self):
        ds = uniform_rectangles(50, 0.2, 2, seed=4)
        assert len(LocalDensityGrid(ds, 5)) == 25
        ds1 = uniform_rectangles(50, 0.2, 1, seed=4)
        assert len(LocalDensityGrid(ds1, 5)) == 5

    def test_local_density_of_uniform_close_to_global(self):
        ds = uniform_rectangles(2000, 0.5, 2, seed=5)
        grid = LocalDensityGrid(ds, 3)
        for _f, d in grid.cells():
            assert d == pytest.approx(0.5, abs=0.15)

    def test_single_cell_equals_global(self):
        ds = uniform_rectangles(500, 0.5, 2, seed=6)
        grid = LocalDensityGrid(ds, 1)
        (_f, d), = grid.cells()
        assert d == pytest.approx(ds.density(), rel=1e-9)

    def test_area_conservation(self):
        # Summed (cell density * cell area) equals the global density:
        # clipping partitions every rectangle exactly.
        ds = uniform_rectangles(400, 0.6, 2, seed=7)
        grid = LocalDensityGrid(ds, 4)
        cell_area = (1 / 4) ** 2
        total = sum(d * cell_area for _f, d in grid.cells())
        assert total == pytest.approx(ds.density(), rel=1e-9)

    def test_hotspot_detected(self):
        rects = [Rect((0.05, 0.05), (0.15, 0.15))] * 50    # one hot cell
        rects += [Rect((0.8, 0.8), (0.81, 0.81))]
        ds = SpatialDataset.from_rects(rects)
        grid = LocalDensityGrid(ds, 4)
        densities = [d for _f, d in grid.cells()]
        assert max(densities) > 5.0
        assert densities.count(0.0) >= 10

    def test_boundary_object_counted_once(self):
        # A rectangle exactly on a cell border belongs to one center cell
        # but contributes density to both cells it touches.
        ds = SpatialDataset.from_rects(
            [Rect((0.45, 0.2), (0.55, 0.3))])   # straddles x = 0.5 at res 2
        grid = LocalDensityGrid(ds, 2)
        assert sum(grid.counts) == 1
        touched = sum(1 for d in grid.densities if d > 0)
        assert touched == 2

    def test_occupied_cells(self):
        ds = uniform_rectangles(1000, 0.5, 2, seed=8)
        grid = LocalDensityGrid(ds, 3)
        assert grid.occupied_cells() == 9

    def test_skew_zero_for_perfectly_even(self):
        rects = [Rect((x / 4 + 0.01, y / 4 + 0.01),
                      (x / 4 + 0.02, y / 4 + 0.02))
                 for x in range(4) for y in range(4)]
        ds = SpatialDataset.from_rects(rects)
        assert LocalDensityGrid(ds, 4).skew_coefficient() == \
            pytest.approx(0.0)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            LocalDensityGrid(SpatialDataset([]), 4)

    def test_rejects_bad_resolution(self):
        ds = uniform_rectangles(10, 0.2, 2, seed=9)
        with pytest.raises(ValueError):
            LocalDensityGrid(ds, 0)
