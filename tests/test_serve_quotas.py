"""Per-tenant quotas over the shared buffer-page pool."""

import threading

import pytest

from repro.serve import BufferPool, QuotaExceeded, ServeConfig


def pool(pages=100, quotas=None, default=None):
    config = ServeConfig(pool_pages=pages,
                         tenant_quotas=quotas or {},
                         default_tenant_pages=default)
    return BufferPool(pages, config.tenant_limit)


class TestBufferPool:
    def test_acquire_release_accounting(self):
        p = pool(100)
        p.acquire("a", 30)
        p.acquire("b", 20)
        assert p.held() == 50
        assert p.held("a") == 30
        p.release("a", 30)
        assert p.held("a") == 0
        assert p.held() == 20

    def test_pool_exhaustion_is_typed(self):
        p = pool(100)
        p.acquire("a", 80)
        with pytest.raises(QuotaExceeded) as err:
            p.acquire("b", 30)
        assert err.value.scope == "pool"
        doc = err.value.as_dict()
        assert doc["error"] == "quota-exceeded"
        assert doc["limit"] == 100

    def test_tenant_ceiling(self):
        p = pool(100, quotas={"small": 10})
        p.acquire("small", 8)
        with pytest.raises(QuotaExceeded) as err:
            p.acquire("small", 5)
        assert err.value.scope == "tenant"
        assert err.value.tenant == "small"
        # Another tenant is unaffected by small's ceiling.
        p.acquire("big", 50)

    def test_default_tenant_pages(self):
        p = pool(100, default=15)
        with pytest.raises(QuotaExceeded):
            p.acquire("anyone", 16)
        p.acquire("anyone", 15)

    def test_oversized_request_refused_even_when_idle(self):
        p = pool(10)
        with pytest.raises(QuotaExceeded):
            p.acquire("a", 11)
        assert p.held() == 0

    def test_over_release_is_an_error(self):
        p = pool(10)
        p.acquire("a", 3)
        with pytest.raises(ValueError):
            p.release("a", 4)

    def test_zero_page_acquire_is_free(self):
        p = pool(10, quotas={"t": 1})
        for _ in range(100):
            p.acquire("t", 0)
        assert p.held("t") == 0

    def test_snapshot(self):
        p = pool(50, quotas={"a": 20})
        p.acquire("a", 5)
        snap = p.snapshot()
        assert snap == {"pool_pages": 50, "held": 5,
                        "tenants": {"a": 5}}

    def test_concurrent_acquire_never_overdraws(self):
        p = pool(100, default=100)
        granted = []
        barrier = threading.Barrier(8)

        def worker(tenant):
            barrier.wait()
            for _ in range(50):
                try:
                    p.acquire(tenant, 7)
                    granted.append(tenant)
                except QuotaExceeded:
                    pass

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert p.held() == len(granted) * 7
        assert p.held() <= 100


class TestConfigValidation:
    def test_tenant_limit_capped_by_pool(self):
        config = ServeConfig(pool_pages=10, tenant_quotas={"a": 50})
        assert config.tenant_limit("a") == 10

    def test_unlisted_tenant_unbounded_by_default(self):
        assert ServeConfig().tenant_limit("x") is None

    @pytest.mark.parametrize("kw", [
        {"max_concurrency": 0},
        {"queue_limit": -1},
        {"pool_pages": 0},
        {"max_predicted_na": -5.0},
        {"tenant_quotas": {"a": 0}},
        {"drain_grace": -1.0},
        {"queue_wait_limit": 0.0},
    ])
    def test_bad_config_rejected(self, kw):
        with pytest.raises(ValueError):
            ServeConfig(**kw)

    def test_as_dict_round_trips(self):
        config = ServeConfig(port=8080, tenant_quotas={"a": 5})
        rebuilt = ServeConfig(**config.as_dict())
        assert rebuilt == config
