"""Unit tests for the buffer managers."""

from repro.storage import LRUBuffer, NoBuffer, PathBuffer

import pytest


class TestNoBuffer:
    def test_always_misses(self):
        buf = NoBuffer()
        assert buf.access("T", 1, 42) is False
        assert buf.access("T", 1, 42) is False

    def test_reset_is_noop(self):
        buf = NoBuffer()
        buf.reset()
        assert buf.access("T", 1, 1) is False


class TestPathBuffer:
    def test_first_access_misses(self):
        buf = PathBuffer()
        assert buf.access("T", 2, 10) is False

    def test_repeat_access_hits(self):
        buf = PathBuffer()
        buf.access("T", 2, 10)
        assert buf.access("T", 2, 10) is True

    def test_same_level_replacement_evicts(self):
        buf = PathBuffer()
        buf.access("T", 2, 10)
        buf.access("T", 2, 11)       # replaces the level-2 slot
        assert buf.access("T", 2, 10) is False

    def test_one_slot_per_level(self):
        buf = PathBuffer()
        buf.access("T", 3, 1)
        buf.access("T", 2, 2)
        buf.access("T", 1, 3)
        assert buf.access("T", 3, 1) is True
        assert buf.access("T", 2, 2) is True
        assert buf.access("T", 1, 3) is True

    def test_reading_higher_level_invalidates_deeper_path(self):
        # The retained path must stay a real root-to-node path: once the
        # traversal moves to a different level-2 node, the old level-1
        # node is no longer on the current path.
        buf = PathBuffer()
        buf.access("T", 2, 10)
        buf.access("T", 1, 20)
        buf.access("T", 2, 11)       # descend into a different subtree
        assert buf.access("T", 1, 20) is False

    def test_trees_are_independent(self):
        buf = PathBuffer()
        buf.access("A", 1, 5)
        assert buf.access("B", 1, 5) is False
        assert buf.access("A", 1, 5) is True

    def test_reset_forgets_everything(self):
        buf = PathBuffer()
        buf.access("T", 1, 5)
        buf.reset()
        assert buf.access("T", 1, 5) is False

    def test_cached_inspection(self):
        buf = PathBuffer()
        buf.access("T", 3, 7)
        buf.access("T", 2, 8)
        assert buf.cached("T") == {3: 7, 2: 8}
        assert buf.cached("other") == {}


class TestPathBufferSnapshot:
    def test_snapshot_round_trip(self):
        buf = PathBuffer()
        buf.access("R1", 2, 10)
        buf.access("R1", 1, 20)
        buf.access("R2", 2, 30)
        clone = PathBuffer()
        clone.restore(buf.snapshot())
        assert clone.cached("R1") == buf.cached("R1")
        assert clone.cached("R2") == buf.cached("R2")
        assert clone.snapshot() == buf.snapshot()

    def test_snapshot_order_independent_of_access_order(self):
        a, b = PathBuffer(), PathBuffer()
        a.access("R1", 1, 1)
        a.access("R2", 1, 2)
        b.access("R2", 1, 2)
        b.access("R1", 1, 1)
        assert a.snapshot() == b.snapshot()

    def test_non_string_labels_do_not_collide(self):
        # str(2) == str("2"): keying the sort on str() made row order
        # depend on dict insertion order whenever labels collided.  The
        # stable-serialization key keeps the types apart.
        a, b = PathBuffer(), PathBuffer()
        a.access(2, 1, 10)
        a.access("2", 1, 20)
        b.access("2", 1, 20)
        b.access(2, 1, 10)
        assert a.snapshot() == b.snapshot()

    def test_non_string_labels_round_trip(self):
        buf = PathBuffer()
        buf.access(2, 2, 10)
        buf.access("2", 2, 11)
        buf.access(("R", 1), 1, 12)      # not JSON-expressible: fallback
        clone = PathBuffer()
        clone.restore(buf.snapshot())
        assert clone.cached(2) == {2: 10}
        assert clone.cached("2") == {2: 11}
        assert clone.cached(("R", 1)) == {1: 12}
        assert clone.snapshot() == buf.snapshot()

    def test_restore_none_clears(self):
        buf = PathBuffer()
        buf.access("T", 1, 5)
        buf.restore(None)
        assert buf.cached("T") == {}


class TestLRUBuffer:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            LRUBuffer(-1)

    def test_zero_capacity_never_hits(self):
        buf = LRUBuffer(0)
        buf.access("T", 1, 1)
        assert buf.access("T", 1, 1) is False

    def test_hit_within_capacity(self):
        buf = LRUBuffer(2)
        buf.access("T", 1, 1)
        buf.access("T", 1, 2)
        assert buf.access("T", 1, 1) is True

    def test_eviction_of_least_recent(self):
        buf = LRUBuffer(2)
        buf.access("T", 1, 1)
        buf.access("T", 1, 2)
        buf.access("T", 1, 3)        # evicts page 1
        assert buf.access("T", 1, 1) is False
        assert buf.access("T", 1, 3) is True

    def test_hit_refreshes_recency(self):
        buf = LRUBuffer(2)
        buf.access("T", 1, 1)
        buf.access("T", 1, 2)
        buf.access("T", 1, 1)        # 1 becomes most recent
        buf.access("T", 1, 3)        # evicts 2, not 1
        assert buf.access("T", 1, 1) is True
        assert buf.access("T", 1, 2) is False

    def test_shared_across_trees_but_keyed_by_tree(self):
        buf = LRUBuffer(4)
        buf.access("A", 1, 7)
        assert buf.access("B", 1, 7) is False  # same id, other tree
        assert buf.access("A", 1, 7) is True

    def test_level_is_irrelevant_for_identity(self):
        buf = LRUBuffer(4)
        buf.access("T", 1, 7)
        assert buf.access("T", 2, 7) is True   # same page, any level

    def test_len_tracks_pool(self):
        buf = LRUBuffer(2)
        buf.access("T", 1, 1)
        buf.access("T", 1, 2)
        buf.access("T", 1, 3)
        assert len(buf) == 2

    def test_reset(self):
        buf = LRUBuffer(2)
        buf.access("T", 1, 1)
        buf.reset()
        assert len(buf) == 0
        assert buf.access("T", 1, 1) is False
