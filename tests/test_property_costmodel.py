"""Property-based tests: cost-model invariants over the parameter space."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import (AnalyticalTreeParams, intsect,
                             join_da_by_tree, join_da_total,
                             join_na_total, join_selectivity_pairs,
                             range_query_na, rtree_height)

cardinalities = st.integers(min_value=1, max_value=200_000)
densities = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
capacities = st.sampled_from([8, 24, 41, 50, 84])
dims = st.integers(min_value=1, max_value=3)


def param_pairs():
    return st.tuples(cardinalities, densities, cardinalities, densities,
                     capacities, dims)


@given(cardinalities, capacities)
def test_height_at_least_one(n, m):
    assert rtree_height(n, m) >= 1


@given(param_pairs())
def test_na_symmetry(args):
    n1, d1, n2, d2, m, ndim = args
    p1 = AnalyticalTreeParams(n1, d1, m, ndim)
    p2 = AnalyticalTreeParams(n2, d2, m, ndim)
    a = join_na_total(p1, p2)
    b = join_na_total(p2, p1)
    assert abs(a - b) <= 1e-9 * max(a, b, 1.0)


@given(param_pairs())
def test_da_never_exceeds_na(args):
    n1, d1, n2, d2, m, ndim = args
    p1 = AnalyticalTreeParams(n1, d1, m, ndim)
    p2 = AnalyticalTreeParams(n2, d2, m, ndim)
    assert join_da_total(p1, p2) <= join_na_total(p1, p2) + 1e-9


@given(param_pairs())
def test_costs_non_negative(args):
    n1, d1, n2, d2, m, ndim = args
    p1 = AnalyticalTreeParams(n1, d1, m, ndim)
    p2 = AnalyticalTreeParams(n2, d2, m, ndim)
    assert join_na_total(p1, p2) >= 0.0
    da1, da2 = join_da_by_tree(p1, p2)
    assert da1 >= 0.0 and da2 >= 0.0


@given(param_pairs())
def test_selectivity_bounded_by_cartesian_product(args):
    n1, d1, n2, d2, m, ndim = args
    p1 = AnalyticalTreeParams(n1, d1, m, ndim)
    p2 = AnalyticalTreeParams(n2, d2, m, ndim)
    pairs = join_selectivity_pairs(p1, p2)
    assert 0.0 <= pairs <= n1 * n2 + 1e-9


@given(cardinalities, densities, capacities, dims,
       st.floats(min_value=0.0, max_value=1.0))
def test_range_na_monotone_in_window(n, d, m, ndim, q):
    p = AnalyticalTreeParams(n, d, m, ndim)
    small = range_query_na(p, (q * 0.5,) * ndim)
    large = range_query_na(p, (q,) * ndim)
    assert small <= large + 1e-9


@given(st.floats(min_value=0, max_value=1e6),
       st.lists(st.floats(min_value=0, max_value=2), min_size=1,
                max_size=4))
def test_intsect_bounded_by_n(n, extents):
    window = [0.1] * len(extents)
    assert intsect(n, extents, window) <= n + 1e-9


@given(cardinalities, densities, capacities, dims)
def test_density_propagation_stays_finite_and_positive(n, d, m, ndim):
    p = AnalyticalTreeParams(n, d, m, ndim)
    for level in range(p.height + 1):
        dj = p.density_at(level)
        assert dj >= 0.0
        assert dj < max(d, 1.0) + 1.0


@given(cardinalities, densities, capacities, dims)
def test_extents_within_workspace(n, d, m, ndim):
    p = AnalyticalTreeParams(n, d, m, ndim)
    for level in range(1, p.height + 1):
        for s in p.extents_at(level):
            assert 0.0 <= s <= 1.0
