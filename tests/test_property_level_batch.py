"""Property-based equivalence: level-batched traversal ≡ stack machine.

The ISSUE-level guarantee for :mod:`repro.join.batch`: for *any* tree
pair — degenerate rectangles, duplicate geometry, empty trees, unequal
heights — a join run with ``traversal="level-batch"`` is bit-identical
to the stack machine in every observable: the pair list *in emission
order*, NA, DA, comparison counts, governed checkpoint bytes, and the
result of resuming a batch-interrupted run.  On the pure-Python
backend the batch engine must fall back to the stack machine and still
match, which these properties cover by drawing the backend too.

Deliberately *not* asserted: ``governor.checks`` — how often the two
engines poll the governor is telemetry, not an observable of the join.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import Budget, ExecutionConfig, ExecutionGovernor
from repro.exec.checkpoint import _canonical
from repro.geometry import Rect
from repro.join import (PartialJoinResult, SpatialJoin, WithinDistance,
                        spatial_join)
from repro.join.predicates import Overlap
from repro.rtree import RStarTree
from repro.storage.buffers import LRUBuffer, NoBuffer, PathBuffer

from .test_property_vectorized import force_backend

SLOW = settings(max_examples=15,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)

#: Coarse grid (see test_property_vectorized): ties, touching edges
#: and zero-extent rectangles are routine, not measure-zero.
grid_coord = st.integers(0, 20).map(lambda k: k / 20.0)


def rect_strategy():
    def build(args):
        x1, y1, x2, y2 = args
        return Rect((min(x1, x2), min(y1, y2)),
                    (max(x1, x2), max(y1, y2)))
    return st.tuples(grid_coord, grid_coord,
                     grid_coord, grid_coord).map(build)


def items_strategy(max_size=50):
    return st.lists(rect_strategy(), min_size=0, max_size=max_size).map(
        lambda rs: [(r, i) for i, r in enumerate(rs)])


backend_strategy = st.sampled_from(["numpy", "python"])
enum_strategy = st.sampled_from(["nested-loop", "vectorized"])
predicate_strategy = st.one_of(
    st.just(Overlap()),
    st.floats(min_value=0.0, max_value=0.3).map(WithinDistance))


def build(items, max_entries=6):
    tree = RStarTree(2, max_entries)
    for rect, oid in items:
        tree.insert(rect, oid)
    return tree


def _signature(result):
    return {
        "pairs": result.pairs,           # emission ORDER matters too
        "pair_count": result.pair_count,
        "comparisons": result.comparisons,
        "na": dict(result.stats.node_accesses),
        "da": dict(result.stats.disk_accesses),
    }


def _configs(enum):
    return (ExecutionConfig(pair_enumeration=enum),
            ExecutionConfig(pair_enumeration=enum,
                            traversal="level-batch"))


@SLOW
@given(items_strategy(), items_strategy(), enum_strategy,
       predicate_strategy, backend_strategy)
def test_batch_join_bit_identical(items1, items2, enum, predicate,
                                  backend):
    with force_backend(backend):
        t1, t2 = build(items1), build(items2)
        stack_cfg, batch_cfg = _configs(enum)
        stack = spatial_join(t1, t2, predicate=predicate,
                             config=stack_cfg)
        batch = spatial_join(t1, t2, predicate=predicate,
                             config=batch_cfg)
        assert _signature(batch) == _signature(stack)


@SLOW
@given(items_strategy(max_size=10), items_strategy(max_size=60),
       enum_strategy, backend_strategy)
def test_batch_join_unequal_heights(items1, items2, enum, backend):
    """Small-vs-large capacity skews the heights, so the r1leaf /
    r2leaf mixed frontiers (one tree already at its leaves) run."""
    with force_backend(backend):
        t1 = build(items1, max_entries=8)
        t2 = build(items2, max_entries=3)
        stack_cfg, batch_cfg = _configs(enum)
        for a, b in ((t1, t2), (t2, t1)):
            stack = spatial_join(a, b, config=stack_cfg)
            batch = spatial_join(a, b, config=batch_cfg)
            assert _signature(batch) == _signature(stack)


@SLOW
@given(items_strategy(), items_strategy(),
       st.sampled_from(["path", "none", "lru"]), enum_strategy)
def test_batch_join_any_buffer_manager(items1, items2, kind, enum):
    """DA depends on the buffer; the batch replay preserves the exact
    ReadPage sequence, so DA matches under every buffer policy."""
    factory = {"path": PathBuffer, "none": NoBuffer,
               "lru": lambda: LRUBuffer(8)}[kind]
    t1, t2 = build(items1), build(items2)
    stack_cfg, batch_cfg = _configs(enum)
    stack = spatial_join(t1, t2, buffer=factory(), config=stack_cfg)
    batch = spatial_join(t1, t2, buffer=factory(), config=batch_cfg)
    assert _signature(batch) == _signature(stack)


@SLOW
@given(items_strategy(), items_strategy(), enum_strategy,
       st.floats(min_value=0.0, max_value=1.0))
def test_governed_checkpoint_bytes_identical(items1, items2, enum,
                                             frac):
    t1, t2 = build(items1), build(items2)
    stack_cfg, batch_cfg = _configs(enum)
    total_na = spatial_join(t1, t2, config=stack_cfg).na_total
    if total_na < 2:
        return                           # nothing to interrupt
    cut = 1 + int(frac * (total_na - 2))

    def governed(config):
        gov = ExecutionGovernor(Budget(max_na=cut), partial=True)
        return SpatialJoin(t1, t2, governor=gov, config=config).run()

    stack = governed(stack_cfg)
    batch = governed(batch_cfg)
    assert batch.complete == stack.complete
    if stack.complete:
        assert _signature(batch) == _signature(stack)
        return
    assert isinstance(stack, PartialJoinResult)
    assert isinstance(batch, PartialJoinResult)
    assert _canonical(batch.checkpoint.to_dict()) \
        == _canonical(stack.checkpoint.to_dict())


@SLOW
@given(items_strategy(), items_strategy(), enum_strategy,
       st.floats(min_value=0.0, max_value=1.0), backend_strategy)
def test_resume_after_batch_cut(items1, items2, enum, frac, backend):
    """A batch run cut mid-flight resumes (on the stack machine, by
    design) to the exact uninterrupted result."""
    with force_backend(backend):
        t1, t2 = build(items1), build(items2)
        stack_cfg, batch_cfg = _configs(enum)
        baseline = _signature(spatial_join(t1, t2, config=stack_cfg))
        total_na = sum(baseline["na"].values())
        if total_na < 2:
            return
        cut = 1 + int(frac * (total_na - 2))
        gov = ExecutionGovernor(Budget(max_na=cut), partial=True)
        first = SpatialJoin(t1, t2, governor=gov, config=batch_cfg).run()
        if first.complete:
            assert _signature(first) == baseline
            return
        assert isinstance(first, PartialJoinResult)
        final = SpatialJoin(t1, t2, config=batch_cfg).resume(
            first.checkpoint)
        assert final.complete
        assert _signature(final) == baseline
