"""Chaos harness: seeded transport faults against a live daemon.

A :class:`~repro.reliability.StreamFaultInjector` plans the abuse —
connections dropped mid-request and mid-response, JSON frames truncated
after promising their full Content-Length, slow-loris trickle — and
:class:`~repro.serve.ChaosClient` executes it over raw sockets.  The
daemon's contract under that storm: no leaked concurrency slots or
pool pages, well-formed answers for every surviving request, and the
slow-client guard turning a trickling sender into a 408, never a held
slot.
"""

import time

import pytest

from repro.join import SpatialJoin
from repro.reliability import StreamFault, StreamFaultInjector
from repro.serve import ChaosClient, ServeClient, ServeConfig
from repro.storage import PathBuffer

from .conftest import build_rstar, make_items
from .test_serve_http import DaemonHarness

REQUEST = {"tree1": "a", "tree2": "b"}


@pytest.fixture(scope="module")
def trees():
    t1 = build_rstar(make_items(280, seed=101), max_entries=8)
    t2 = build_rstar(make_items(240, seed=102), max_entries=8)
    return t1, t2


@pytest.fixture(scope="module")
def direct(trees):
    t1, t2 = trees
    return SpatialJoin(t1, t2, PathBuffer()).run(collect_pairs=False)


@pytest.fixture(scope="module")
def harness(trees, tmp_path_factory):
    state = tmp_path_factory.mktemp("chaos-state")
    h = DaemonHarness(ServeConfig(port=0,
                                  state_dir=str(state / "state")))
    h.service.register_tree("a", trees[0])
    h.service.register_tree("b", trees[1])
    yield h
    h.close()


def _host_port(harness):
    hostport = harness.http_url.removeprefix("http://")
    host, _, port = hostport.rpartition(":")
    return host, int(port)


def _settle(harness, timeout=10.0):
    """Wait for the daemon to shed every in-flight request."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = harness.service.status()
        if status["running"] == 0 and harness.service.pool.held() == 0:
            return
        time.sleep(0.05)
    raise AssertionError("daemon never settled after the chaos storm")


class TestInjectorDeterminism:
    def test_same_seed_same_plan(self):
        kwargs = dict(seed=11, drop_request_rate=0.3,
                      truncate_frame_rate=0.3, slow_loris_rate=0.2,
                      drop_response_rate=0.1)
        a = StreamFaultInjector(**kwargs)
        b = StreamFaultInjector(**kwargs)
        plans = [(f.kind, f.fraction) for f in (a.plan()
                                                for _ in range(50))]
        assert plans == [(f.kind, f.fraction)
                        for f in (b.plan() for _ in range(50))]
        assert a.counts.as_dict() == b.counts.as_dict()

    def test_reset_replays_identically(self):
        inj = StreamFaultInjector(seed=3, drop_request_rate=0.5)
        first = [inj.plan().kind for _ in range(20)]
        inj.reset()
        assert [inj.plan().kind for _ in range(20)] == first
        assert inj.counts.requests == 20

    def test_zero_rates_never_inject(self):
        inj = StreamFaultInjector(seed=1)
        assert all(inj.plan().kind == "none" for _ in range(100))


class TestChaosStorm:
    def test_storm_leaks_nothing(self, harness, direct):
        host, port = _host_port(harness)
        injector = StreamFaultInjector(
            seed=7, drop_request_rate=0.25, truncate_frame_rate=0.25,
            slow_loris_rate=0.15, drop_response_rate=0.15,
            chunk=16, delay=0.001)
        chaos = ChaosClient(host, port, injector)
        good = ServeClient(harness.http_url, timeout=30.0)

        outcomes = []
        for i in range(40):
            outcomes.append(chaos.join(REQUEST))
            if i % 10 == 9:
                # A well-behaved client must not notice the storm.
                resp = good.join("a", "b")
                assert resp["status"] == "complete"
                assert resp["na"] == direct.na_total

        counts = injector.counts.as_dict()
        assert counts["requests"] == 40
        tally = {}
        for o in outcomes:
            tally[o.kind] = tally.get(o.kind, 0) + 1
        assert tally.get("drop-request", 0) == counts["drop_request"]
        assert tally.get("truncate-frame", 0) == counts["truncate_frame"]
        assert tally.get("slow-loris", 0) == counts["slow_loris"]
        assert tally.get("drop-response", 0) == counts["drop_response"]

        # Requests the fault let through still got full valid answers.
        for o in outcomes:
            if o.kind in ("none", "slow-loris") and o.status is not None:
                assert o.status == 200
                assert o.doc["status"] == "complete"
                assert o.doc["na"] == direct.na_total

        _settle(harness)
        final = good.join("a", "b")
        assert final["na"] == direct.na_total
        assert final["da"] == direct.da_total

    def test_lost_response_recovered_by_idempotent_retry(self, harness,
                                                         direct):
        # The injector's reason to exist: a response lost in transit is
        # exactly what an idempotency key + retry must paper over.
        host, port = _host_port(harness)
        chaos = ChaosClient(host, port, StreamFaultInjector())
        outcome = chaos.execute(StreamFault("drop-response"), REQUEST,
                                idempotency_key="chaos-lost")
        assert outcome.sent > 0
        _settle(harness)      # server finishes the join regardless

        good = ServeClient(harness.http_url, timeout=30.0)
        before = good.metrics()["counters"].get(
            "serve.idempotent_hits", 0)
        resp = good.join("a", "b", idempotency_key="chaos-lost")
        assert resp["status"] == "complete"
        assert resp["na"] == direct.na_total
        after = good.metrics()["counters"]["serve.idempotent_hits"]
        assert after == before + 1


class TestSlowLorisGuard:
    @pytest.fixture()
    def slow_harness(self, trees, tmp_path):
        h = DaemonHarness(ServeConfig(port=0, read_timeout=0.3))
        h.service.register_tree("a", trees[0])
        h.service.register_tree("b", trees[1])
        yield h
        h.close()

    def test_trickling_client_gets_408_not_a_slot(self, slow_harness):
        host, port = _host_port(slow_harness)
        chaos = ChaosClient(host, port, StreamFaultInjector(),
                            timeout=30.0)
        # ~180 bytes at 2 bytes / 20ms ≈ 1.8s of trickle against a
        # 0.3s read timeout: the daemon must cut the client off.
        outcome = chaos.execute(
            StreamFault("slow-loris", chunk=2, delay=0.02), REQUEST)
        assert outcome.status == 408 or outcome.error is not None
        snap = slow_harness.service.metrics_snapshot()
        assert snap["counters"]["serve.slow_client_timeouts"] >= 1
        assert slow_harness.service.status()["running"] == 0
        # The guard punishes slow clients only: a normal join after it
        # sails through.
        resp = ServeClient(slow_harness.http_url,
                           timeout=30.0).join("a", "b")
        assert resp["status"] == "complete"
