"""The Hilbert curve index."""

import math

import pytest

from repro.rtree import hilbert_index, hilbert_index_float


class TestHilbertIndex:
    def test_bijective_on_small_2d_grid(self):
        bits = 4
        seen = set()
        for x in range(16):
            for y in range(16):
                seen.add(hilbert_index((x, y), bits))
        assert seen == set(range(16 * 16))

    def test_bijective_on_small_3d_grid(self):
        bits = 2
        seen = {hilbert_index((x, y, z), bits)
                for x in range(4) for y in range(4) for z in range(4)}
        assert seen == set(range(4 ** 3))

    def test_curve_is_continuous_2d(self):
        # Consecutive Hilbert positions must be grid neighbours: this is
        # the property that makes packing by Hilbert order local.
        bits = 4
        position = {hilbert_index((x, y), bits): (x, y)
                    for x in range(16) for y in range(16)}
        for h in range(16 * 16 - 1):
            (x1, y1), (x2, y2) = position[h], position[h + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_one_dimensional_is_identity(self):
        for v in (0, 1, 5, 255):
            assert hilbert_index((v,), 8) == v

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_index((16, 0), 4)
        with pytest.raises(ValueError):
            hilbert_index((-1, 0), 4)

    def test_rejects_empty_coords(self):
        with pytest.raises(ValueError):
            hilbert_index((), 4)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            hilbert_index((0, 0), 0)


class TestHilbertFloat:
    def test_unit_coords(self):
        h = hilbert_index_float((0.5, 0.5), bits=8)
        assert 0 <= h < (1 << 16)

    def test_clamps_out_of_unit(self):
        a = hilbert_index_float((1.5, 0.5), bits=8)
        b = hilbert_index_float((1.0, 0.5), bits=8)
        assert a == b

    def test_locality_better_than_random(self):
        # Points close in space should usually be close on the curve:
        # compare average index distance of near pairs vs far pairs.
        near = abs(hilbert_index_float((0.30, 0.30))
                   - hilbert_index_float((0.30001, 0.30001)))
        far = abs(hilbert_index_float((0.1, 0.1))
                  - hilbert_index_float((0.9, 0.9)))
        assert near < far

    def test_deterministic(self):
        assert hilbert_index_float((0.123, 0.456)) == \
            hilbert_index_float((0.123, 0.456))
