"""Unit tests for the estimator-accuracy ledger."""

import json

import pytest

from repro.obs import AccuracyLedger, AccuracyRecord, MemorySink, Tracer
from repro.storage import AccessStats


def _stats(na_misses=3, na_hits=1):
    stats = AccessStats()
    for _ in range(na_misses):
        stats.record("R1", 1, buffer_hit=False)
    for _ in range(na_hits):
        stats.record("R2", 1, buffer_hit=True)
    return stats


class TestRecordJoin:
    def test_observed_side_copies_stats_exactly(self):
        stats = _stats()
        ledger = AccuracyLedger()
        rec = ledger.record_join(stats, estimated_na=5.0,
                                 estimated_da=2.0, pairs=7)
        assert rec.na_observed == stats.na()
        assert rec.da_observed == stats.da()
        assert rec.per_tree["R1"] == {"na": 3, "da": 3}
        assert rec.per_tree["R2"] == {"na": 1, "da": 0}
        assert rec.per_level["node_accesses"] == \
            stats.as_dict()["node_accesses"]
        assert rec.pairs == 7

    def test_relative_error_convention(self):
        # measured 4 NA / 3 DA vs model 5 / 2.
        rec = AccuracyLedger().record_join(_stats(), 5.0, 2.0)
        assert rec.na_error == pytest.approx((5.0 - 4) / 4)
        assert rec.da_error == pytest.approx((2.0 - 3) / 3)

    def test_zero_measured_nonzero_model_is_none(self):
        rec = AccuracyLedger().record_join(AccessStats(), 5.0, 2.0)
        assert rec.na_error is None
        assert rec.da_error is None

    def test_zero_measured_zero_model_is_exact(self):
        rec = AccuracyLedger().record_join(AccessStats(), 0.0, 0.0)
        assert rec.na_error == 0.0

    def test_unavailable_estimate_is_none(self):
        rec = AccuracyLedger().record_join(_stats(), None, None)
        assert rec.na_estimated is None
        assert rec.na_error is None

    def test_mirrors_into_tracer(self):
        sink = MemorySink()
        ledger = AccuracyLedger(tracer=Tracer(sink))
        ledger.record_join(_stats(), 5.0, 2.0, label="x")
        [rec] = sink.records
        assert rec["event"] == "accuracy"
        assert rec["label"] == "x"
        assert rec["na_observed"] == 4

    def test_record_round_trips_as_json(self):
        rec = AccuracyLedger().record_join(_stats(), 5.0, None)
        doc = json.loads(json.dumps(rec.as_dict(), allow_nan=False))
        back = AccuracyRecord.from_dict(doc)
        assert back.as_dict() == rec.as_dict()


class TestSummarize:
    def test_skips_undefined_without_biasing(self):
        ledger = AccuracyLedger()
        ledger.record_join(_stats(), 6.0, 3.0)        # na_error +0.5
        ledger.record_join(AccessStats(), 5.0, 2.0)   # both None
        summary = ledger.summarize()
        assert summary["joins"] == 2
        assert summary["na"]["defined"] == 1
        assert summary["na"]["mean_abs"] == pytest.approx(0.5)
        assert summary["na"]["bias"] == pytest.approx(0.5)

    def test_all_none_axis(self):
        ledger = AccuracyLedger()
        ledger.record_join(AccessStats(), 5.0, 2.0)
        summary = ledger.summarize()
        assert summary["na"]["defined"] == 0
        assert summary["na"]["mean_abs"] == 0.0
        assert summary["na"]["drift"] is None

    def test_drift_compares_halves(self):
        ledger = AccuracyLedger()
        # First half biased +0.5, second half unbiased.
        ledger.record_join(_stats(), 6.0, 3.0)   # +0.5
        ledger.record_join(_stats(), 4.0, 3.0)   # 0.0
        assert ledger.summarize()["na"]["drift"] == pytest.approx(-0.5)

    def test_extend_from_trace_rebuilds_records(self):
        sink = MemorySink()
        src = AccuracyLedger(tracer=Tracer(sink))
        src.record_join(_stats(), 5.0, 2.0)
        src.record_join(_stats(), 4.0, 3.0)
        rebuilt = AccuracyLedger()
        assert rebuilt.extend_from_trace(sink.records) == 2
        assert [r.as_dict() for r in rebuilt.records] == \
            [r.as_dict() for r in src.records]
