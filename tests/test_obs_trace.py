"""Unit tests for the tracer and its sinks."""

import json

import pytest

from repro.obs import (JsonlSink, MemorySink, NullSink,
                       TRACE_SCHEMA_VERSION, Tracer)


class TestSinks:
    def test_null_sink_discards(self):
        sink = NullSink()
        sink.write({"event": "x"})       # no error, no storage
        sink.close()

    def test_memory_sink_keeps_records_in_order(self):
        sink = MemorySink()
        sink.write({"seq": 1})
        sink.write({"seq": 2})
        assert [r["seq"] for r in sink.records] == [1, 2]

    def test_memory_sink_is_a_ring_buffer(self):
        sink = MemorySink(capacity=3)
        for i in range(5):
            sink.write({"seq": i})
        assert [r["seq"] for r in sink.records] == [2, 3, 4]
        assert sink.dropped == 2
        assert len(sink) == 3

    def test_memory_sink_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)

    def test_jsonl_sink_writes_strict_json_lines(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            sink.write({"event": "a", "x": 1})
            sink.write({"event": "b", "y": [1, 2]})
        lines = [json.loads(line) for line in
                 open(path, encoding="utf-8")]
        assert [r["event"] for r in lines] == ["a", "b"]

    def test_jsonl_sink_rejects_nan(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        with pytest.raises(ValueError):
            sink.write({"x": float("nan")})
        sink.close()

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()


class TestTracer:
    def test_records_carry_schema_seq_ts(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=lambda: 123.5)
        tracer.emit("join_start", join="j1")
        [rec] = sink.records
        assert rec["schema"] == TRACE_SCHEMA_VERSION
        assert rec["seq"] == 1
        assert rec["ts"] == 123.5
        assert rec["event"] == "join_start"
        assert rec["join"] == "j1"

    def test_seq_is_monotonic(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        for _ in range(5):
            tracer.emit("e")
        assert [r["seq"] for r in sink.records] == [1, 2, 3, 4, 5]

    def test_null_sink_disables_tracer(self):
        tracer = Tracer(NullSink())
        assert tracer.enabled is False
        tracer.emit("e", x=1)            # cheap no-op, nothing stored

    def test_join_ids_are_fresh(self):
        tracer = Tracer(MemorySink())
        assert tracer.new_join_id() == "j1"
        assert tracer.new_join_id() == "j2"

    def test_pair_sampling_is_deterministic(self):
        tracer = Tracer(MemorySink(), sample_pairs=3)
        wanted = [v for v in range(1, 10) if tracer.want_pair(v)]
        assert wanted == [3, 6, 9]

    def test_pair_sampling_off_by_default(self):
        tracer = Tracer(MemorySink())
        assert not any(tracer.want_pair(v) for v in range(1, 100))

    def test_negative_sampling_rejected(self):
        with pytest.raises(ValueError):
            Tracer(MemorySink(), sample_pairs=-1)

    def test_buffer_access_self_samples(self):
        sink = MemorySink()
        tracer = Tracer(sink, sample_buffer=2)
        for page in range(6):
            tracer.buffer_access("R1", 1, page, hit=False)
        events = [r for r in sink.records
                  if r["event"] == "buffer_access"]
        assert len(events) == 3          # every 2nd of 6

    def test_buffer_access_disabled_without_sampling(self):
        sink = MemorySink()
        tracer = Tracer(sink)            # sample_buffer=0
        tracer.buffer_access("R1", 1, 7, hit=True)
        assert sink.records == []

    def test_join_finish_fields(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.join_finish("j1", na=10, da=4, pairs=3, comparisons=99,
                           complete=False)
        [rec] = sink.records
        assert rec["na"] == 10 and rec["da"] == 4
        assert rec["pairs"] == 3 and rec["comparisons"] == 99
        assert rec["complete"] is False


class TestTracerClocks:
    def test_records_carry_monotonic_elapsed(self):
        sink = MemorySink()
        mono = iter([100.0, 100.25, 101.5])
        tracer = Tracer(sink, clock=lambda: 7.0,
                        monotonic=lambda: next(mono))
        tracer.emit("a")
        tracer.emit("b")
        assert [r["elapsed"] for r in sink.records] == [0.25, 1.5]

    def test_ts_never_decreases_under_backward_wall_clock(self):
        # NTP skew: the wall clock steps back mid-trace.  seq keeps
        # increasing, so ts must be clamped to the high-water mark.
        sink = MemorySink()
        wall = iter([1000.0, 1005.0, 990.0, 991.0, 1010.0])
        tracer = Tracer(sink, clock=lambda: next(wall))
        for _ in range(5):
            tracer.emit("e")
        ts = [r["ts"] for r in sink.records]
        assert ts == sorted(ts)
        assert ts == [1000.0, 1005.0, 1005.0, 1005.0, 1010.0]

    def test_elapsed_immune_to_wall_clock_skew(self):
        sink = MemorySink()
        wall = iter([1000.0, 500.0])     # wall clock jumps back 500s
        mono = iter([10.0, 10.1, 10.2])  # monotonic just keeps going
        tracer = Tracer(sink, clock=lambda: next(wall),
                        monotonic=lambda: next(mono))
        tracer.emit("a")
        tracer.emit("b")
        elapsed = [r["elapsed"] for r in sink.records]
        assert elapsed == sorted(elapsed)
        assert elapsed[0] >= 0.0

    def test_real_clocks_produce_sane_fields(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.emit("a")
        tracer.emit("b")
        a, b = sink.records
        assert b["ts"] >= a["ts"]
        assert 0.0 <= a["elapsed"] <= b["elapsed"]
